// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/persist/store.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace dimmunix {
namespace persist {

HistoryStore::HistoryStore(StoreOptions options, History* history, StackTable* stacks,
                           obs::Recorder* recorder)
    : options_(std::move(options)), history_(history), stacks_(stacks), recorder_(recorder) {}

HistoryStore::~HistoryStore() { Stop(); }

void HistoryStore::Start() {
  {
    std::lock_guard<std::mutex> guard(cv_m_);
    if (started_) {
      return;
    }
    started_ = true;
    stop_ = false;
  }
  // Bring disk and memory in sync at startup: folds any journal left by a
  // crashed predecessor into a fresh snapshot, pulls in signatures other
  // processes wrote since our History::Load, and guarantees the file exists
  // from the instant the runtime is up.
  if (options_.merge_on_start) {
    Compact(MergePolicy::kPreferIncoming, /*sync_only=*/true);
  }
  thread_ = std::thread([this] { Loop(); });
}

void HistoryStore::Stop() {
  {
    std::lock_guard<std::mutex> guard(cv_m_);
    if (!started_) {
      return;
    }
    stop_ = true;
    wake_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> guard(cv_m_);
    started_ = false;
    stop_ = false;
  }
  // Stragglers enqueued while the thread was shutting down (the join makes
  // this thread the queue's consumer now), then a final durable snapshot.
  DrainQueue();
  bool need_final = false;
  {
    std::lock_guard<std::mutex> io(io_m_);
    need_final = dirty_;
  }
  if (need_final) {
    Compact(MergePolicy::kPreferExisting);
  }
}

void HistoryStore::NotifySignatureChanged(int index) {
  queue_.Push(index);
  stat_queued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(cv_m_);
    wake_ = true;
  }
  cv_.notify_one();
}

bool HistoryStore::SaveNow() { return Compact(MergePolicy::kPreferExisting); }

bool HistoryStore::ExportTo(const std::string& path) {
  const HistoryImage image = history_->ExportImage();
  std::string error;
  if (!SaveHistoryFile(path, image, &error)) {
    DIMMUNIX_LOG(kError) << "persist: export to " << path << " failed: " << error;
    stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

int HistoryStore::MergeFrom(const std::string& path) {
  HistoryImage image;
  const LoadResult load = LoadHistoryFile(path, &image);
  // Unlike startup loads, an explicit merge of a missing file is an error.
  if (!load.ok() || load.status == LoadStatus::kNotFound) {
    DIMMUNIX_LOG(kWarn) << "persist: cannot merge from " << path << ": " << load.message;
    return -1;
  }
  const int added = history_->MergeImage(image, MergePolicy::kPreferIncoming);
  if (added > 0) {
    stat_foreign_.fetch_add(static_cast<std::uint64_t>(added), std::memory_order_relaxed);
  }
  if (on_merged_) {
    on_merged_();
  }
  SaveNow();
  return added;
}

void HistoryStore::SetOnHistoryMerged(std::function<void()> fn) { on_merged_ = std::move(fn); }

StoreStatsSnapshot HistoryStore::stats() const {
  StoreStatsSnapshot snap;
  snap.appends = stat_appends_.load(std::memory_order_relaxed);
  snap.compactions = stat_compactions_.load(std::memory_order_relaxed);
  snap.foreign_merged = stat_foreign_.load(std::memory_order_relaxed);
  snap.io_errors = stat_io_errors_.load(std::memory_order_relaxed);
  snap.queued = stat_queued_.load(std::memory_order_relaxed);
  snap.journal_since_compact = stat_since_compact_.load(std::memory_order_relaxed);
  snap.resyncs = stat_resyncs_.load(std::memory_order_relaxed);
  const std::int64_t last = stat_last_resync_ms_.load(std::memory_order_relaxed);
  if (last >= 0) {
    const std::int64_t now = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count();
    snap.last_resync_age_ms = now >= last ? now - last : 0;
  }
  return snap;
}

void HistoryStore::Loop() {
  if (recorder_ != nullptr) {
    recorder_->NameThisThread("dimmunix-store");
  }
  auto last_resync = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(cv_m_);
  for (;;) {
    if (options_.resync_period.count() > 0) {
      cv_.wait_for(lk, options_.resync_period, [this] { return wake_ || stop_; });
    } else {
      cv_.wait(lk, [this] { return wake_ || stop_; });
    }
    const bool stopping = stop_;
    wake_ = false;
    lk.unlock();
    DrainQueue();
    if (stopping) {
      return;  // Stop() runs the final compaction after the join
    }
    if (options_.resync_period.count() > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_resync >= options_.resync_period) {
        // File wins operator knobs here: this is how a `dimctl disable` or a
        // vendor-shipped signature in one process reaches all the others.
        Compact(MergePolicy::kPreferIncoming, /*sync_only=*/true);
        last_resync = now;
      }
    }
    lk.lock();
  }
}

void HistoryStore::DrainQueue() {
  while (auto op = queue_.Pop()) {
    stat_queued_.fetch_sub(1, std::memory_order_relaxed);
    AppendDelta(*op);
  }
  bool threshold_reached = false;
  {
    std::lock_guard<std::mutex> io(io_m_);
    // threshold <= 0 means "compact on every delta" (src/common/config.h).
    threshold_reached = appends_since_compact_ >= std::max(1, options_.journal_threshold);
  }
  if (threshold_reached) {
    Compact(MergePolicy::kPreferExisting);
  }
}

void HistoryStore::AppendDelta(int index) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size()) {
    return;
  }
  const SignatureRecord record = RecordFor(history_->Get(index));
  std::lock_guard<std::mutex> io(io_m_);
  const std::uint64_t flush_begin =
      recorder_ != nullptr && recorder_->tracing() ? obs::NowNs() : 0;
  if (AppendJournalRecord(options_.path, record, options_.fsync_appends)) {
    if (flush_begin != 0) {
      const std::uint64_t end_ns = obs::NowNs();
      recorder_->Span(obs::TraceEventType::kStoreFlush, end_ns, end_ns - flush_begin,
                      obs::SaturateAux(index));
    }
    stat_appends_.fetch_add(1, std::memory_order_relaxed);
    ++appends_since_compact_;
    stat_since_compact_.store(static_cast<std::uint64_t>(appends_since_compact_),
                              std::memory_order_relaxed);
    dirty_ = true;
  } else {
    stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool HistoryStore::Compact(MergePolicy policy, bool sync_only) {
  std::lock_guard<std::mutex> io(io_m_);
  const std::uint64_t compact_begin =
      recorder_ != nullptr && recorder_->tracing() ? obs::NowNs() : 0;
  FileLock lock(LockPathFor(options_.path));
  lock.Acquire();

  HistoryImage on_disk;
  const LoadResult load = LoadHistoryFile(
      options_.path, &on_disk, LoadOptions{/*with_journal=*/true, /*take_lock=*/false});
  if (load.status == LoadStatus::kIoError) {
    // Never blind-overwrite a file we could not read: it may hold other
    // processes' signatures. Keep journaling; retry at the next compaction.
    DIMMUNIX_LOG(kError) << "persist: compaction cannot read " << options_.path << ": "
                         << load.message;
    stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  const int added = history_->MergeImage(on_disk, policy);
  if (added > 0) {
    stat_foreign_.fetch_add(static_cast<std::uint64_t>(added), std::memory_order_relaxed);
    DIMMUNIX_LOG(kInfo) << "persist: merged " << added << " signature(s) from "
                        << options_.path;
  }

  const HistoryImage image = history_->ExportImage();
  // Rewrite only when the durable state would actually change: a startup or
  // resync compaction over an already-current snapshot (and no journal to
  // fold) stays a pure read — no churn on shared or vendor-managed files.
  const bool journal_pending =
      ::access(JournalPathFor(options_.path).c_str(), F_OK) == 0;
  bool unchanged = false;
  if (!journal_pending) {
    std::ifstream current(options_.path, std::ios::binary);
    if (current) {
      std::ostringstream buf;
      buf << current.rdbuf();
      unchanged = !current.bad() && buf.str() == EncodeSnapshotV2(image);
    }
  }
  // read_mostly (save_history_on_update=false): a pure synchronization pass
  // never creates or rewrites the file — only a journal left behind by a
  // previous (writing) incarnation justifies touching it.
  const bool suppress_write = sync_only && options_.read_mostly && !journal_pending;
  if (!unchanged && !suppress_write) {
    std::string error;
    if (!SaveHistoryFile(options_.path, image, &error, SaveOptions{/*take_lock=*/false})) {
      DIMMUNIX_LOG(kError) << "persist: compaction of " << options_.path << " failed: "
                           << error;
      stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stat_compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  appends_since_compact_ = 0;
  stat_since_compact_.store(0, std::memory_order_relaxed);
  dirty_ = false;
  if (sync_only) {
    // A synchronizing pass consumed the shared file's current state: that
    // is the "resync" operators watch for in `dimctl status`.
    stat_resyncs_.fetch_add(1, std::memory_order_relaxed);
    stat_last_resync_ms_.store(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }
  if (added > 0 && on_merged_) {
    on_merged_();
  }
  if (compact_begin != 0) {
    const std::uint64_t end_ns = obs::NowNs();
    recorder_->Span(obs::TraceEventType::kStoreCompact, end_ns, end_ns - compact_begin,
                    /*aux=*/0, /*mode=*/0,
                    added > 0 ? static_cast<std::uint64_t>(added) : 0);
  }
  return true;
}

SignatureRecord HistoryStore::RecordFor(const Signature& sig) const {
  SignatureRecord rec;
  rec.kind = sig.kind == SignatureKind::kStarvation ? 1 : 0;
  rec.disabled = sig.disabled;
  rec.knob_epoch = sig.knob_epoch;
  rec.match_depth = sig.match_depth;
  rec.avoidance_count = sig.avoidance_count;
  rec.abort_count = sig.abort_count;
  rec.fp_count = sig.fp_count;
  rec.stacks.reserve(sig.stacks.size());
  for (StackId id : sig.stacks) {
    rec.stacks.push_back(stacks_->Get(id).frames);
  }
  rec.Canonicalize();
  return rec;
}

}  // namespace persist
}  // namespace dimmunix
