// Copyright (c) dimmunix-cpp authors. MIT license.
//
// HistoryImage — the portable, runtime-free representation of a signature
// history. It is what the on-disk formats (src/persist/format.h) encode and
// decode, what the journal replays into, and what two histories exchange
// when they merge: plain frames, no StackIds, no StackTable, no locks.
//
// Signatures are keyed by their canonical stack multiset (each stack's
// frames verbatim, the multiset sorted lexicographically), the same
// identity History uses in memory — "duplicate signatures are disallowed"
// (§5.3) holds across process and machine boundaries.

#ifndef DIMMUNIX_PERSIST_IMAGE_H_
#define DIMMUNIX_PERSIST_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/stack/frame.h"

namespace dimmunix {
namespace persist {

// One signature, self-contained. `kind` mirrors SignatureKind (0 = deadlock,
// 1 = starvation) without pulling the signature headers into this layer.
struct SignatureRecord {
  std::uint8_t kind = 0;
  bool disabled = false;
  // Bumped every time the operator knobs (disabled, match_depth) change.
  // Merges compare epochs first, so a knob change made in one process wins
  // over every stale copy regardless of who compacts last; MergePolicy only
  // breaks ties. Wraps at 65536 — irrelevant in practice (knob changes are
  // operator actions), and a wrap just degrades to tie-break-by-policy.
  std::uint16_t knob_epoch = 0;
  std::int32_t match_depth = 4;
  std::uint64_t avoidance_count = 0;
  std::uint64_t abort_count = 0;
  std::uint64_t fp_count = 0;
  std::vector<std::vector<Frame>> stacks;  // each innermost-first

  // Sorts `stacks` lexicographically — the canonical multiset order every
  // encoder emits, which is what makes save -> load -> save byte-identical.
  void Canonicalize();

  bool SameSignatureAs(const SignatureRecord& other) const;
};

struct HistoryImage {
  std::vector<SignatureRecord> records;

  // Index of the record with `stacks` equal to (canonicalized) `rec`'s,
  // or -1. Linear scan: images are small and short-lived.
  int Find(const SignatureRecord& rec) const;
};

// Who wins the operator knobs (disabled flag, matching depth) when the same
// signature exists on both sides *at the same knob_epoch*. A higher epoch
// always wins outright — the policy is only the tie-breaker. Counters
// always merge with max(): they only ever grow, in every process.
enum class MergePolicy {
  kPreferExisting,  // compaction: in-memory state is newer than the file
  kPreferIncoming,  // reload/vendor patch (§8): the file is authoritative
};

struct MergeStats {
  std::size_t added = 0;    // signatures that did not exist in dst
  std::size_t updated = 0;  // existing signatures whose fields changed
};

// Merges `src` into `dst` under `policy`.
MergeStats MergeInto(HistoryImage* dst, const HistoryImage& src, MergePolicy policy);

// --- Delta extraction (fleet gossip, history_tool diff) ----------------------
//
// Two histories compare by exchanging *digests*: one {hash, knob_epoch} pair
// per signature. The hash is order-independent over the stack multiset (each
// stack hashed separately, the per-stack hashes sorted, then combined), so
// canonical and non-canonical copies of the same signature digest
// identically in every process and on every host.

std::uint64_t SignatureHash(const SignatureRecord& rec);

struct DigestEntry {
  std::uint64_t hash = 0;
  std::uint16_t knob_epoch = 0;
};

// One entry per record, sorted by hash (deterministic wire encoding).
std::vector<DigestEntry> DigestOf(const HistoryImage& image);

// The records of `image` a peer holding `have` is missing — absent from the
// digest entirely, or present with an older knob_epoch (the peer would learn
// a newer operator action from our copy). This is what a gossip round ships.
HistoryImage DeltaAgainst(const HistoryImage& image, const std::vector<DigestEntry>& have);

// Field-level comparison for `history_tool diff`.
struct ImageDiff {
  std::vector<std::uint64_t> only_in_a;  // hashes present in a, absent in b
  std::vector<std::uint64_t> only_in_b;
  struct KnobDiff {
    std::uint64_t hash = 0;
    std::uint16_t epoch_a = 0;
    std::uint16_t epoch_b = 0;
  };
  std::vector<KnobDiff> knob_differs;  // epoch / disabled / depth disagree

  bool identical() const {
    return only_in_a.empty() && only_in_b.empty() && knob_differs.empty();
  }
};

ImageDiff DiffImages(const HistoryImage& a, const HistoryImage& b);

}  // namespace persist
}  // namespace dimmunix

#endif  // DIMMUNIX_PERSIST_IMAGE_H_
