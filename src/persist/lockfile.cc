// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/persist/lockfile.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"

namespace dimmunix {
namespace persist {

FileLock::FileLock(std::string path) : path_(std::move(path)) {}

FileLock::~FileLock() { Release(); }

bool FileLock::Acquire() {
  if (fd_ >= 0) {
    return true;
  }
  const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    DIMMUNIX_LOG(kWarn) << "persist: cannot open lock file " << path_ << ": "
                        << std::strerror(errno) << " (proceeding unlocked)";
    return false;
  }
  struct flock lk {};
  lk.l_type = F_WRLCK;
  lk.l_whence = SEEK_SET;
  lk.l_start = 0;
  lk.l_len = 0;  // whole file
#ifdef F_OFD_SETLKW
  // Open-file-description locks: scoped to this fd, so two FileLocks in one
  // process genuinely exclude each other, and closing an unrelated fd of
  // the lock file cannot drop our lock (both are classic POSIX-lock traps).
  const int cmd = F_OFD_SETLKW;
  lk.l_pid = 0;  // required by OFD locks
#else
  const int cmd = F_SETLKW;
#endif
  int rc;
  do {
    rc = ::fcntl(fd, cmd, &lk);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    DIMMUNIX_LOG(kWarn) << "persist: fcntl(F_SETLKW) on " << path_ << " failed: "
                        << std::strerror(errno) << " (proceeding unlocked)";
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void FileLock::Release() {
  if (fd_ < 0) {
    return;
  }
  // close(2) releases the fcntl lock.
  ::close(fd_);
  fd_ = -1;
}

}  // namespace persist
}  // namespace dimmunix
