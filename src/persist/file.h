// Copyright (c) dimmunix-cpp authors. MIT license.
//
// History file I/O: the durable triple <history>, <history>.journal,
// <history>.lock and the operations over it. Writers follow one protocol:
//
//   acquire <history>.lock (fcntl, exclusive, blocking)
//     appends:    single write(2) of one journal record to <history>.journal
//     snapshots:  write <history>.tmp.<pid>.<seq>, fsync, rename(2) over
//                 <history>, unlink the journal (its records are now folded
//                 into the snapshot)
//   release the lock
//
// Readers need no lock for the snapshot (rename is atomic — they see the
// old file or the new one, never a mix) but take it by default so a load
// cannot interleave with another process's compaction between snapshot
// rename and journal truncation. Load order is snapshot first, then journal
// replay (journal records are newer and win).
//
// Every function here is crash-safe against SIGKILL at any instruction: the
// worst outcomes are a stale-but-complete snapshot, a torn final journal
// record (dropped on replay), or a leftover .tmp file (ignored by loads).

#ifndef DIMMUNIX_PERSIST_FILE_H_
#define DIMMUNIX_PERSIST_FILE_H_

#include <string>

#include "src/persist/format.h"
#include "src/persist/image.h"
#include "src/persist/lockfile.h"

namespace dimmunix {
namespace persist {

std::string JournalPathFor(const std::string& history_path);
std::string LockPathFor(const std::string& history_path);

struct LoadOptions {
  bool with_journal = true;  // replay <path>.journal after the snapshot
  bool take_lock = true;     // false when the caller already holds the FileLock
};

// Loads <path> (v2 binary or legacy v1 text, auto-detected) and, by default,
// replays its journal sidecar. Appends to `image`. A missing file is
// kNotFound with an untouched image — an empty immune system, not an error.
LoadResult LoadHistoryFile(const std::string& path, HistoryImage* image,
                           const LoadOptions& options = {});

struct SaveOptions {
  bool take_lock = true;  // false when the caller already holds the FileLock
};

// Atomically replaces <path> with the v2 encoding of `image` and removes the
// journal sidecar (the snapshot now contains everything). False on I/O
// failure with `error` (if non-null) set.
bool SaveHistoryFile(const std::string& path, const HistoryImage& image,
                     std::string* error = nullptr, const SaveOptions& options = {});

// Appends one self-contained record to <journal_path>, creating the journal
// (with its header) if needed. One write(2) call: a crash can only tear the
// final record. `held_lock` non-null means the caller holds the FileLock.
bool AppendJournalRecord(const std::string& history_path, const SignatureRecord& record,
                         bool fsync_after, FileLock* held_lock = nullptr);

// The multi-process merge primitive: under the file lock, load -> merge
// `image` in (kPreferIncoming) -> save. Concurrent callers across processes
// serialize on the lock, so nobody's signatures are lost. Returns the merge
// stats via `stats` (if non-null); false on I/O failure.
bool MergeIntoFile(const std::string& path, const HistoryImage& image,
                   MergeStats* stats = nullptr, std::string* error = nullptr);

// Strict integrity check for history_tool validate: any dropped record,
// torn tail, or unusable section makes the result kCorrupt.
LoadResult ValidateHistoryFile(const std::string& path);

// Removes the whole durable triple: <path>, <path>.journal, <path>.lock.
// Deleting only the snapshot is not enough — a surviving journal would
// resurrect its signatures on the next load.
void RemoveHistoryFiles(const std::string& path);

}  // namespace persist
}  // namespace dimmunix

#endif  // DIMMUNIX_PERSIST_FILE_H_
