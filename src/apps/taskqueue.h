// Copyright (c) dimmunix-cpp authors. MIT license.
//
// TaskQueue — reproduces Limewire 4.17.9 bug #1449 (Table 1): "HsqlDB
// TaskQueue cancel and shutdown()". The embedded HsqlDB's TaskQueue
// deadlocks when a task cancel (task monitor -> queue monitor) races a
// database shutdown (queue monitor -> task monitors). Table 1 notes *two*
// deadlock patterns for this bug at matching depth 10: cancel can reach the
// queue monitor through two distinct deep call chains (timer expiry and user
// cancel), and the paper's signatures needed 10 frames to separate them. We
// model both chains with ten-deep annotated wrappers.

#ifndef DIMMUNIX_APPS_TASKQUEUE_H_
#define DIMMUNIX_APPS_TASKQUEUE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sync/mutex.h"

namespace dimmunix {

class TaskQueue {
 public:
  explicit TaskQueue(Runtime& runtime);

  int Submit();  // returns task id

  // Pattern 1: user-initiated cancel (task -> queue), 10-deep call chain.
  void CancelFromUser(int task);
  // Pattern 2: timer-initiated cancel (task -> queue), a different 10-deep
  // call chain.
  void CancelFromTimer(int task);
  // shutdown(): queue -> every task.
  void Shutdown();

  int live_tasks() const;

  std::function<void()> pause_in_cancel;    // holding the task monitor
  std::function<void()> pause_in_shutdown;  // holding the queue monitor

 private:
  struct Task {
    explicit Task(Runtime& runtime) : m(runtime) {}
    RecursiveMutex m;
    bool canceled = false;
  };

  void CancelInner(int task);  // common tail: assumes task monitor held

  Runtime& runtime_;
  mutable RecursiveMutex queue_m_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_TASKQUEUE_H_
