// Copyright (c) dimmunix-cpp authors. MIT license.
//
// MiniHawkNL — reproduces the HawkNL 1.6b3 deadlock of Table 1:
// nlShutdown() called concurrently with nlClose(). Shutdown walks the socket
// table holding the global library lock and takes each socket's lock;
// nlClose takes the socket lock and then the library lock to deregister the
// socket. Table 1 reports 10 yields per trial — the shutdown/close pattern
// is re-encountered once per open socket (we open 10).

#ifndef DIMMUNIX_APPS_HAWKNL_H_
#define DIMMUNIX_APPS_HAWKNL_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sync/mutex.h"

namespace dimmunix {

class MiniHawkNl {
 public:
  explicit MiniHawkNl(Runtime& runtime);

  int Open();              // returns a socket handle
  void Close(int socket);  // socket lock -> library lock
  void Shutdown();         // library lock -> every socket lock
  int open_sockets() const;

  std::function<void()> pause_in_close;     // holding socket lock
  std::function<void()> pause_in_shutdown;  // holding library lock
  std::function<void()> pause_per_socket;   // per socket closed by Shutdown

 private:
  struct Socket {
    explicit Socket(Runtime& runtime) : m(runtime) {}
    Mutex m;
    bool open = true;
  };

  Runtime& runtime_;
  mutable Mutex lib_m_;
  std::vector<std::unique_ptr<Socket>> sockets_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_HAWKNL_H_
