// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Reader-writer deadlock scenarios — the rwlock workloads the modified
// libthr of §6 targets, rebuilt on sync::SharedMutex so the acquisition
// port sees every edge with its mode.
//
// Two bugs:
//  * Writer-vs-writer through a reader: each path write-locks its own table
//    and then read-locks the other (a report that joins two tables). Two
//    concurrent paths in opposite order deadlock: each shared request
//    conflicts with the other thread's exclusive hold.
//  * Upgrade deadlock (the SQLite RESERVED-lock shape): writers serialize
//    upgrades through a token mutex and then drain readers by write-locking
//    the data lock, while a reader path holding a read lock goes on to need
//    the token. Upgrade waits for the reader to drain; the reader waits for
//    the token — a mixed rwlock+mutex cycle with a shared hold edge in it.
//
// Plus a reader-only workload which must be completely invisible to the
// engine: reader-reader coexistence yields nothing and never forms a cycle.

#ifndef DIMMUNIX_APPS_RWLOCK_CYCLE_H_
#define DIMMUNIX_APPS_RWLOCK_CYCLE_H_

#include <functional>

#include "src/sync/shared_mutex.h"

namespace dimmunix {

class RwlockCycle {
 public:
  explicit RwlockCycle(Runtime& runtime);

  // --- Writer-vs-writer-through-reader --------------------------------------
  void UpdateAJoinB();  // wrlock(table A) -> rdlock(table B)
  void UpdateBJoinA();  // wrlock(table B) -> rdlock(table A)

  // --- Upgrade deadlock ------------------------------------------------------
  void UpgradeViaToken();  // lock(token) -> wrlock(table A): drain readers
  void ReadThenToken();    // rdlock(table A) -> lock(token)

  // --- Control ----------------------------------------------------------------
  void ReadOnly();  // rdlock(table A) read section; never conflicts

  // Exploit hook: runs while holding the first lock of each path, before
  // requesting the second (widens the deadlock window deterministically).
  std::function<void()> pause_between_locks;

 private:
  void PauseIfSet();

  SharedMutex table_a_;
  SharedMutex table_b_;
  Mutex upgrade_token_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_RWLOCK_CYCLE_H_
