// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/hawknl.h"

#include "src/stack/annotation.h"

namespace dimmunix {

MiniHawkNl::MiniHawkNl(Runtime& runtime) : runtime_(runtime), lib_m_(runtime) {}

int MiniHawkNl::Open() {
  DIMMUNIX_FRAME();  // nlOpen
  std::lock_guard<Mutex> lib_guard(lib_m_);
  sockets_.push_back(std::make_unique<Socket>(runtime_));
  return static_cast<int>(sockets_.size() - 1);
}

void MiniHawkNl::Close(int socket) {
  DIMMUNIX_FRAME();  // nlClose: socket lock, then library lock
  Socket& s = *sockets_[static_cast<std::size_t>(socket)];
  s.m.lock();
  if (pause_in_close) {
    pause_in_close();
  }
  {
    DIMMUNIX_NAMED_FRAME("MiniHawkNl::Close/deregister");
    std::lock_guard<Mutex> lib_guard(lib_m_);
    s.open = false;
  }
  s.m.unlock();
}

void MiniHawkNl::Shutdown() {
  DIMMUNIX_FRAME();  // nlShutdown: library lock, then the socket lock —
                     // re-taken per socket, as the real teardown loop does.
  for (auto& socket : sockets_) {
    std::lock_guard<Mutex> lib_guard(lib_m_);
    if (pause_in_shutdown) {
      pause_in_shutdown();
    }
    if (pause_per_socket) {
      pause_per_socket();  // models the per-socket teardown I/O
    }
    DIMMUNIX_NAMED_FRAME("MiniHawkNl::Shutdown/close_socket");
    std::lock_guard<Mutex> socket_guard(socket->m);
    socket->open = false;
  }
}

int MiniHawkNl::open_sockets() const {
  std::lock_guard<Mutex> lib_guard(lib_m_);
  int open = 0;
  for (const auto& socket : sockets_) {
    if (socket->open) {
      ++open;
    }
  }
  return open;
}

}  // namespace dimmunix
