// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/rwlock_cycle.h"

#include <shared_mutex>

#include "src/stack/annotation.h"

namespace dimmunix {

RwlockCycle::RwlockCycle(Runtime& runtime)
    : table_a_(runtime), table_b_(runtime), upgrade_token_(runtime) {}

void RwlockCycle::PauseIfSet() {
  if (pause_between_locks) {
    pause_between_locks();
  }
}

void RwlockCycle::UpdateAJoinB() {
  DIMMUNIX_FRAME();  // update A, then join against B
  std::lock_guard<SharedMutex> write_a(table_a_);
  PauseIfSet();
  DIMMUNIX_NAMED_FRAME("RwlockCycle::UpdateAJoinB/join_b");
  std::shared_lock<SharedMutex> read_b(table_b_);
}

void RwlockCycle::UpdateBJoinA() {
  DIMMUNIX_FRAME();  // update B, then join against A
  std::lock_guard<SharedMutex> write_b(table_b_);
  PauseIfSet();
  DIMMUNIX_NAMED_FRAME("RwlockCycle::UpdateBJoinA/join_a");
  std::shared_lock<SharedMutex> read_a(table_a_);
}

void RwlockCycle::UpgradeViaToken() {
  DIMMUNIX_FRAME();  // take the upgrade token, then drain readers of A
  std::lock_guard<Mutex> token(upgrade_token_);
  PauseIfSet();
  DIMMUNIX_NAMED_FRAME("RwlockCycle::UpgradeViaToken/drain_readers");
  std::lock_guard<SharedMutex> write_a(table_a_);
}

void RwlockCycle::ReadThenToken() {
  DIMMUNIX_FRAME();  // read A, then serialize on the token
  std::shared_lock<SharedMutex> read_a(table_a_);
  PauseIfSet();
  DIMMUNIX_NAMED_FRAME("RwlockCycle::ReadThenToken/take_token");
  std::lock_guard<Mutex> token(upgrade_token_);
}

void RwlockCycle::ReadOnly() {
  DIMMUNIX_FRAME();
  std::shared_lock<SharedMutex> read_a(table_a_);
  PauseIfSet();
}

}  // namespace dimmunix
