// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/jdbc.h"

#include "src/stack/annotation.h"

namespace dimmunix {

JdbcStatement::JdbcStatement(Runtime& runtime, JdbcConnection* conn, std::string sql)
    : runtime_(runtime), conn_(conn), sql_(std::move(sql)), monitor_(runtime) {}

std::string JdbcStatement::GetWarnings() {
  DIMMUNIX_FRAME();  // PreparedStatement.getWarnings (bug #2147)
  std::lock_guard<RecursiveMutex> stmt_guard(monitor_);
  if (pause) {
    pause();
  }
  DIMMUNIX_NAMED_FRAME("JdbcStatement::GetWarnings/checkClosed");
  std::lock_guard<RecursiveMutex> conn_guard(conn_->monitor_);
  return conn_->closed_ ? "connection closed" : "";
}

std::vector<int> JdbcStatement::ExecuteQuery() {
  DIMMUNIX_FRAME();  // (Prepared)Statement.executeQuery (bugs #31136, #17709)
  std::lock_guard<RecursiveMutex> stmt_guard(monitor_);
  if (pause) {
    pause();
  }
  DIMMUNIX_NAMED_FRAME("JdbcStatement::ExecuteQuery/serverRoundTrip");
  std::lock_guard<RecursiveMutex> conn_guard(conn_->monitor_);
  return conn_->RunOnServer(sql_);
}

void JdbcStatement::Close() {
  DIMMUNIX_FRAME();  // Statement.close (bug #14972)
  std::lock_guard<RecursiveMutex> stmt_guard(monitor_);
  if (closed_) {
    return;
  }
  if (pause) {
    pause();
  }
  DIMMUNIX_NAMED_FRAME("JdbcStatement::Close/deregister");
  std::lock_guard<RecursiveMutex> conn_guard(conn_->monitor_);
  closed_ = true;
}

JdbcConnection::JdbcConnection(Runtime& runtime) : runtime_(runtime), monitor_(runtime) {}

JdbcStatement* JdbcConnection::PrepareStatement(const std::string& sql) {
  DIMMUNIX_FRAME();  // Connection.prepareStatement (bugs #14972, #17709)
  std::lock_guard<RecursiveMutex> conn_guard(monitor_);
  if (pause) {
    pause();
  }
  // The connector scans open statements while preparing a new one (the
  // conn -> stmt half of bugs #14972 and #17709).
  for (auto& open : statements_) {
    DIMMUNIX_NAMED_FRAME("JdbcConnection::PrepareStatement/checkOpenResults");
    std::lock_guard<RecursiveMutex> stmt_guard(open->monitor_);
    if (open->closed_) {
      continue;
    }
  }
  auto stmt = std::make_unique<JdbcStatement>(runtime_, this, sql);
  JdbcStatement* raw = stmt.get();
  {
    DIMMUNIX_NAMED_FRAME("JdbcConnection::PrepareStatement/registerStatement");
    std::lock_guard<RecursiveMutex> stmt_guard(raw->monitor_);
    statements_.push_back(std::move(stmt));
  }
  return raw;
}

void JdbcConnection::Close() {
  DIMMUNIX_FRAME();  // Connection.close (bugs #2147, #31136)
  std::lock_guard<RecursiveMutex> conn_guard(monitor_);
  if (closed_) {
    return;
  }
  if (pause) {
    pause();
  }
  for (auto& stmt : statements_) {
    DIMMUNIX_NAMED_FRAME("JdbcConnection::Close/closeStatement");
    std::lock_guard<RecursiveMutex> stmt_guard(stmt->monitor_);
    stmt->closed_ = true;
  }
  closed_ = true;
}

std::vector<int> JdbcConnection::RunOnServer(const std::string& sql) {
  ++round_trips_;
  return {static_cast<int>(sql.size())};
}

}  // namespace dimmunix
