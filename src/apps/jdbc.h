// Copyright (c) dimmunix-cpp authors. MIT license.
//
// MiniJdbc — reproduces the four MySQL 5.0 JDBC connector deadlocks of
// Table 1. The connector's Connection and Statement objects are Java
// synchronized classes (reentrant monitors); the bugs are lock-order
// inversions between a connection monitor and a statement monitor reached
// through different API pairs:
//
//   #2147  PreparedStatement.getWarnings()  (stmt -> conn)
//          vs Connection.close()            (conn -> stmt)
//   #14972 Connection.prepareStatement()    (conn -> stmt)
//          vs Statement.close()             (stmt -> conn)
//   #31136 PreparedStatement.executeQuery() (stmt -> conn)
//          vs Connection.close()            (conn -> stmt)
//   #17709 Statement.executeQuery()         (stmt -> conn)
//          vs Connection.prepareStatement() (conn -> stmt)
//
// Each entry point is a distinct annotated call site, so each bug produces
// its own deadlock signature even though they share the two monitors.

#ifndef DIMMUNIX_APPS_JDBC_H_
#define DIMMUNIX_APPS_JDBC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sync/mutex.h"

namespace dimmunix {

class JdbcConnection;

class JdbcStatement {
 public:
  JdbcStatement(Runtime& runtime, JdbcConnection* conn, std::string sql);

  // stmt -> conn paths.
  std::string GetWarnings();                   // bug #2147's first half
  std::vector<int> ExecuteQuery();             // bugs #31136 / #17709's first half
  void Close();                                // bug #14972's first half

  RecursiveMutex& monitor() { return monitor_; }
  bool closed() const { return closed_; }

  // Exploit hook: runs while holding the statement monitor, before taking
  // the connection monitor.
  std::function<void()> pause;

 private:
  friend class JdbcConnection;
  Runtime& runtime_;
  JdbcConnection* conn_;
  std::string sql_;
  RecursiveMutex monitor_;
  bool closed_ = false;
};

class JdbcConnection {
 public:
  explicit JdbcConnection(Runtime& runtime);

  // conn -> stmt paths.
  JdbcStatement* PrepareStatement(const std::string& sql);  // #14972 / #17709 second half
  void Close();                                             // #2147 / #31136 second half

  RecursiveMutex& monitor() { return monitor_; }
  bool closed() const { return closed_; }
  int server_round_trips() const { return round_trips_; }
  // Called by statements with the connection monitor held.
  std::vector<int> RunOnServer(const std::string& sql);

  std::function<void()> pause;  // runs holding conn monitor, before stmt monitors

 private:
  friend class JdbcStatement;
  Runtime& runtime_;
  RecursiveMutex monitor_;
  std::vector<std::unique_ptr<JdbcStatement>> statements_;
  bool closed_ = false;
  int round_trips_ = 0;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_JDBC_H_
