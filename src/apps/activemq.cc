// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/activemq.h"

#include "src/stack/annotation.h"

namespace dimmunix {

// --- Bug #336 ----------------------------------------------------------------

BrokerSession::BrokerSession(Runtime& runtime) : runtime_(runtime), monitor_(runtime) {}

BrokerConsumer* BrokerSession::CreateConsumer() {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> session_guard(monitor_);
  consumers_.push_back(std::unique_ptr<BrokerConsumer>(new BrokerConsumer(runtime_, this)));
  return consumers_.back().get();
}

void BrokerSession::DispatchOne(const std::string& message) {
  DIMMUNIX_FRAME();  // active dispatch: session -> consumer
  std::lock_guard<RecursiveMutex> session_guard(monitor_);
  if (pause_in_dispatch) {
    pause_in_dispatch();
  }
  for (auto& consumer : consumers_) {
    DIMMUNIX_NAMED_FRAME("BrokerSession::DispatchOne/push");
    std::lock_guard<RecursiveMutex> consumer_guard(consumer->monitor_);
    consumer->Push(message);
  }
}

BrokerConsumer::BrokerConsumer(Runtime& runtime, BrokerSession* session)
    : session_(session), monitor_(runtime) {}

void BrokerConsumer::SetListener(std::function<void(const std::string&)> listener) {
  DIMMUNIX_FRAME();  // listener creation: consumer -> session
  std::lock_guard<RecursiveMutex> consumer_guard(monitor_);
  if (pause_in_set_listener) {
    pause_in_set_listener();
  }
  DIMMUNIX_NAMED_FRAME("BrokerConsumer::SetListener/drainToListener");
  std::lock_guard<RecursiveMutex> session_guard(session_->monitor_);
  listener_ = std::move(listener);
  while (!buffered_.empty()) {
    listener_(buffered_.front());
    buffered_.pop_front();
    received_.fetch_add(1);
  }
}

void BrokerConsumer::Push(const std::string& message) {
  // Caller (the session) already holds both monitors in dispatch order.
  if (listener_) {
    listener_(message);
    received_.fetch_add(1);
  } else {
    buffered_.push_back(message);
  }
}

// --- Bug #575 ----------------------------------------------------------------

BrokerQueue::BrokerQueue(Runtime& runtime) : queue_m_(runtime), subscription_m_(runtime) {}

void BrokerQueue::DropEventInner() {
  if (pause_in_drop) {
    pause_in_drop();
  }
  DIMMUNIX_NAMED_FRAME("BrokerQueue::DropEventInner/notify_subscription");
  std::lock_guard<RecursiveMutex> sub_guard(subscription_m_);
  ++drops_;
}

void BrokerQueue::DropEventOnOverflow() {
  DIMMUNIX_FRAME();  // pattern 1 of 3
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  DropEventInner();
}

void BrokerQueue::DropEventOnExpiry() {
  DIMMUNIX_FRAME();  // pattern 2 of 3
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  DropEventInner();
}

void BrokerQueue::DropEventOnPurge() {
  DIMMUNIX_FRAME();  // pattern 3 of 3
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  DropEventInner();
}

void BrokerQueue::SubscriptionAdd() {
  DIMMUNIX_FRAME();  // PrefetchSubscription.add: subscription -> queue
  std::lock_guard<RecursiveMutex> sub_guard(subscription_m_);
  if (pause_in_add) {
    pause_in_add();
  }
  DIMMUNIX_NAMED_FRAME("BrokerQueue::SubscriptionAdd/enqueue");
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  ++adds_;
}

}  // namespace dimmunix
