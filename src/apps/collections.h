// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Synchronized collection classes reproducing the JDK 1.6 "invitations to
// deadlock" of Table 2 (§7.1.2). Each class is thread-safe in isolation —
// exactly like java.util.Vector and friends — yet two perfectly legal
// concurrent calls can deadlock *inside* the library:
//
//   SyncVector:       v1.AddAll(v2)  ||  v2.AddAll(v1)
//   SyncHashtable:    h1.Equals(h2)  ||  h2.Equals(h1)   (mutual members)
//   SyncStringBuffer: s1.Append(s2)  ||  s2.Append(s1)
//   PrintWriter:      w.Write(...)   ||  CharArrayWriter::WriteTo(w)
//   BeanContext:      ctx.PropertyChange() || ctx.Remove(child)
//
// All monitors are reentrant (Java synchronized semantics).

#ifndef DIMMUNIX_APPS_COLLECTIONS_H_
#define DIMMUNIX_APPS_COLLECTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sync/mutex.h"

namespace dimmunix {

class SyncVector {
 public:
  explicit SyncVector(Runtime& runtime) : monitor_(runtime) {}

  void Add(int value);
  std::size_t Size() const;
  // v.AddAll(other): locks v's monitor, then other's (the JDK's iteration
  // over `other` happens under both).
  void AddAll(SyncVector& other);

  std::function<void()> pause_in_add_all;  // holding own monitor only

 private:
  mutable RecursiveMutex monitor_;
  std::vector<int> items_;
};

class SyncHashtable {
 public:
  explicit SyncHashtable(Runtime& runtime) : monitor_(runtime) {}

  void Put(int key, SyncHashtable* value);
  // h.Equals(foo): locks h, then each value's monitor while comparing.
  bool Equals(SyncHashtable& other);

  std::function<void()> pause_in_equals;

 private:
  mutable RecursiveMutex monitor_;
  std::vector<std::pair<int, SyncHashtable*>> entries_;
};

class SyncStringBuffer {
 public:
  explicit SyncStringBuffer(Runtime& runtime) : monitor_(runtime) {}

  void Set(std::string value);
  std::string Get() const;
  // s.Append(other): locks s, then other (other.ToStringLocked()).
  void Append(SyncStringBuffer& other);

  std::function<void()> pause_in_append;

 private:
  mutable RecursiveMutex monitor_;
  std::string value_;
};

class SyncPrintWriter;

class SyncCharArrayWriter {
 public:
  explicit SyncCharArrayWriter(Runtime& runtime) : monitor_(runtime) {}

  void Append(const std::string& text);
  // writer.WriteTo(w): locks the char buffer, then the PrintWriter.
  void WriteTo(SyncPrintWriter& out);

  std::function<void()> pause_in_write_to;

 private:
  friend class SyncPrintWriter;
  mutable RecursiveMutex monitor_;
  std::string buffer_;
};

class SyncPrintWriter {
 public:
  explicit SyncPrintWriter(Runtime& runtime) : monitor_(runtime) {}

  // w.Write(buffer): locks the PrintWriter, then the source buffer.
  void Write(SyncCharArrayWriter& source);
  std::string Output() const;

  std::function<void()> pause_in_write;

 private:
  friend class SyncCharArrayWriter;
  mutable RecursiveMutex monitor_;
  std::string output_;
};

class BeanContextSupport {
 public:
  explicit BeanContextSupport(Runtime& runtime) : children_m_(runtime), global_m_(runtime) {}

  void Add(int child);
  // propertyChange(): global hierarchy lock, then the children monitor.
  void PropertyChange();
  // remove(): children monitor, then the global hierarchy lock.
  void Remove(int child);
  std::size_t ChildCount() const;

  std::function<void()> pause_in_property_change;  // holding global lock
  std::function<void()> pause_in_remove;           // holding children lock

 private:
  mutable RecursiveMutex children_m_;
  RecursiveMutex global_m_;
  std::vector<int> children_;
  int property_changes_ = 0;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_COLLECTIONS_H_
