// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/taskqueue.h"

#include "src/stack/annotation.h"

namespace dimmunix {

TaskQueue::TaskQueue(Runtime& runtime) : runtime_(runtime), queue_m_(runtime) {}

int TaskQueue::Submit() {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  tasks_.push_back(std::make_unique<Task>(runtime_));
  return static_cast<int>(tasks_.size() - 1);
}

void TaskQueue::CancelInner(int task) {
  // Deregister from the queue while still holding the task monitor — the
  // task -> queue half of the inversion.
  if (pause_in_cancel) {
    pause_in_cancel();
  }
  DIMMUNIX_NAMED_FRAME("TaskQueue::CancelInner/deregister");
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  tasks_[static_cast<std::size_t>(task)]->canceled = true;
}

// Ten-deep wrapper chains: the paper's two patterns for this bug required
// matching depth 10 to tell apart.
#define TQ_CHAIN(prefix, level, next)                   \
  do {                                                  \
    DIMMUNIX_NAMED_FRAME(prefix #level);                \
    next;                                               \
  } while (0)

void TaskQueue::CancelFromUser(int task) {
  DIMMUNIX_FRAME();
  Task& t = *tasks_[static_cast<std::size_t>(task)];
  std::lock_guard<RecursiveMutex> task_guard(t.m);
  TQ_CHAIN("TaskQueue::user/", 1,
    TQ_CHAIN("TaskQueue::user/", 2,
      TQ_CHAIN("TaskQueue::user/", 3,
        TQ_CHAIN("TaskQueue::user/", 4,
          TQ_CHAIN("TaskQueue::user/", 5,
            TQ_CHAIN("TaskQueue::user/", 6,
              TQ_CHAIN("TaskQueue::user/", 7,
                TQ_CHAIN("TaskQueue::user/", 8, CancelInner(task)))))))));
}

void TaskQueue::CancelFromTimer(int task) {
  DIMMUNIX_FRAME();
  Task& t = *tasks_[static_cast<std::size_t>(task)];
  std::lock_guard<RecursiveMutex> task_guard(t.m);
  TQ_CHAIN("TaskQueue::timer/", 1,
    TQ_CHAIN("TaskQueue::timer/", 2,
      TQ_CHAIN("TaskQueue::timer/", 3,
        TQ_CHAIN("TaskQueue::timer/", 4,
          TQ_CHAIN("TaskQueue::timer/", 5,
            TQ_CHAIN("TaskQueue::timer/", 6,
              TQ_CHAIN("TaskQueue::timer/", 7,
                TQ_CHAIN("TaskQueue::timer/", 8, CancelInner(task)))))))));
}

#undef TQ_CHAIN

void TaskQueue::Shutdown() {
  DIMMUNIX_FRAME();  // queue -> every task
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  if (pause_in_shutdown) {
    pause_in_shutdown();
  }
  for (auto& task : tasks_) {
    DIMMUNIX_NAMED_FRAME("TaskQueue::Shutdown/cancel_task");
    std::lock_guard<RecursiveMutex> task_guard(task->m);
    task->canceled = true;
  }
}

int TaskQueue::live_tasks() const {
  std::lock_guard<RecursiveMutex> queue_guard(queue_m_);
  int live = 0;
  for (const auto& task : tasks_) {
    if (!task->canceled) {
      ++live;
    }
  }
  return live;
}

}  // namespace dimmunix
