// Copyright (c) dimmunix-cpp authors. MIT license.
//
// SQLite 3.3.0 bug #1672 (Table 1): "Deadlock in the custom recursive lock
// implementation". SQLite built its own recursive mutex out of two plain
// mutexes — one protecting the recursion bookkeeping (owner, count) and the
// main mutex providing exclusion. The Enter path takes bookkeeping -> main
// while a concurrent Leave path can take main-side state -> bookkeeping,
// deadlocking the two halves of the *same* abstraction.

#ifndef DIMMUNIX_APPS_SQLITE_RLOCK_H_
#define DIMMUNIX_APPS_SQLITE_RLOCK_H_

#include <functional>
#include <thread>

#include "src/sync/mutex.h"

namespace dimmunix {

// The buggy hand-rolled recursive lock.
class SqliteRecursiveLock {
 public:
  explicit SqliteRecursiveLock(Runtime& runtime);

  // Enter: bookkeeping lock -> main lock (when not already the owner).
  void Enter();
  // Busy-handler path: main lock -> bookkeeping lock (the inversion).
  void EnterFromBusyHandler();
  void Leave();

  int recursion_count() const { return count_; }

  std::function<void()> pause;  // exploit hook: held first lock, not second

 private:
  Mutex state_m_;  // guards owner_/count_
  Mutex main_m_;   // provides the actual exclusion
  std::thread::id owner_{};
  int count_ = 0;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_SQLITE_RLOCK_H_
