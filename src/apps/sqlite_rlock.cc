// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/sqlite_rlock.h"

#include "src/stack/annotation.h"

namespace dimmunix {

SqliteRecursiveLock::SqliteRecursiveLock(Runtime& runtime)
    : state_m_(runtime), main_m_(runtime) {}

void SqliteRecursiveLock::Enter() {
  DIMMUNIX_FRAME();  // sqlite3_mutex_enter
  state_m_.lock();
  if (count_ > 0 && owner_ == std::this_thread::get_id()) {
    ++count_;
    state_m_.unlock();
    return;
  }
  if (pause) {
    pause();
  }
  {
    DIMMUNIX_NAMED_FRAME("SqliteRecursiveLock::Enter/acquire_main");
    main_m_.lock();
  }
  owner_ = std::this_thread::get_id();
  count_ = 1;
  state_m_.unlock();
}

void SqliteRecursiveLock::EnterFromBusyHandler() {
  DIMMUNIX_FRAME();  // the inverted path: grabs the main mutex first
  main_m_.lock();
  if (pause) {
    pause();
  }
  {
    DIMMUNIX_NAMED_FRAME("SqliteRecursiveLock::EnterFromBusyHandler/update_state");
    state_m_.lock();
  }
  owner_ = std::this_thread::get_id();
  count_ = 1;
  state_m_.unlock();
}

void SqliteRecursiveLock::Leave() {
  DIMMUNIX_FRAME();
  state_m_.lock();
  if (--count_ <= 0) {
    count_ = 0;
    owner_ = std::thread::id{};
    main_m_.unlock();
  }
  state_m_.unlock();
}

}  // namespace dimmunix
