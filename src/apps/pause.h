// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Timing helpers used by the bug exploits. §7.1.1: "We used timing loops to
// generate 'exploits', i.e. test cases that deterministically reproduced the
// deadlocks." Each exploit holds its first lock for a window long enough
// that two threads started together always overlap, turning the race into a
// deterministic deadlock (without Dimmunix) or a deterministic avoidance
// (with it).

#ifndef DIMMUNIX_APPS_PAUSE_H_
#define DIMMUNIX_APPS_PAUSE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>

namespace dimmunix {

// How long an exploit thread keeps its first lock before requesting the
// second one. Generous enough to be deterministic on a loaded single core.
inline constexpr std::chrono::milliseconds kExploitHoldWindow{50};

inline void ExploitHold() { std::this_thread::sleep_for(kExploitHoldWindow); }

// For exploits that loop over the buggy operation (ActiveMQ #336/#575): the
// first overlap must be wide enough to deadlock deterministically, but later
// iterations only exist to re-encounter the avoided pattern, so they hold
// briefly.
inline std::function<void()> MakeDecayingPause() {
  auto calls = std::make_shared<std::atomic<int>>(0);
  return [calls] {
    if (calls->fetch_add(1) == 0) {
      std::this_thread::sleep_for(kExploitHoldWindow);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
}

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_PAUSE_H_
