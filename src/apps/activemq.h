// Copyright (c) dimmunix-cpp authors. MIT license.
//
// MiniBroker — reproduces the two Apache ActiveMQ deadlocks of Table 1.
//
//   AMQ 3.1 bug #336: "Listener creation and active dispatching of messages
//   to consumer". The dispatcher thread holds the session monitor while
//   pushing a message into a consumer (session -> consumer); a client thread
//   installing a listener locks the consumer and then the session
//   (consumer -> session). Because dispatch runs in a loop, the avoided
//   pattern is re-encountered continuously — Table 1 reports ~1.8·10^5
//   yields per trial for this bug.
//
//   AMQ 4.0 bug #575: "Queue.dropEvent() and PrefetchSubscription.add()".
//   Queue eviction locks the queue then the subscription; adding a
//   subscription locks the subscription then the queue. The paper counts
//   three distinct patterns (three call paths into dropEvent); it could
//   reproduce only one — we model that one plus the two extra entry points
//   so the pattern count is inspectable.

#ifndef DIMMUNIX_APPS_ACTIVEMQ_H_
#define DIMMUNIX_APPS_ACTIVEMQ_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sync/mutex.h"

namespace dimmunix {

// --- Bug #336 --------------------------------------------------------------

class BrokerConsumer;

class BrokerSession {
 public:
  explicit BrokerSession(Runtime& runtime);

  BrokerConsumer* CreateConsumer();
  // Dispatch one message to every consumer: session -> consumer monitors.
  void DispatchOne(const std::string& message);

  RecursiveMutex& monitor() { return monitor_; }
  std::function<void()> pause_in_dispatch;  // holding the session monitor

 private:
  friend class BrokerConsumer;
  Runtime& runtime_;
  RecursiveMutex monitor_;
  std::vector<std::unique_ptr<BrokerConsumer>> consumers_;
};

class BrokerConsumer {
 public:
  BrokerConsumer(Runtime& runtime, BrokerSession* session);

  // Install a message listener: consumer -> session monitors (bug #336).
  void SetListener(std::function<void(const std::string&)> listener);
  void Push(const std::string& message);  // called by the session
  std::size_t received() const { return received_.load(); }

  std::function<void()> pause_in_set_listener;  // holding the consumer monitor

 private:
  friend class BrokerSession;
  BrokerSession* session_;
  RecursiveMutex monitor_;
  std::function<void(const std::string&)> listener_;
  std::deque<std::string> buffered_;
  std::atomic<std::size_t> received_{0};
};

// --- Bug #575 --------------------------------------------------------------

class BrokerQueue {
 public:
  explicit BrokerQueue(Runtime& runtime);

  // Three distinct call paths into the eviction logic (three patterns).
  void DropEventOnOverflow();  // queue -> subscription
  void DropEventOnExpiry();    // queue -> subscription
  void DropEventOnPurge();     // queue -> subscription
  // PrefetchSubscription.add(): subscription -> queue.
  void SubscriptionAdd();

  std::function<void()> pause_in_drop;  // holding the queue monitor
  std::function<void()> pause_in_add;   // holding the subscription monitor
  int drops() const { return drops_; }
  int adds() const { return adds_; }

 private:
  void DropEventInner();

  RecursiveMutex queue_m_;
  RecursiveMutex subscription_m_;
  int drops_ = 0;
  int adds_ = 0;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_ACTIVEMQ_H_
