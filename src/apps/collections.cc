// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/collections.h"

#include "src/stack/annotation.h"

namespace dimmunix {

// --- SyncVector ---------------------------------------------------------------

void SyncVector::Add(int value) {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  items_.push_back(value);
}

std::size_t SyncVector::Size() const {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  return items_.size();
}

void SyncVector::AddAll(SyncVector& other) {
  DIMMUNIX_FRAME();  // Vector.addAll
  std::lock_guard<RecursiveMutex> self_guard(monitor_);
  if (pause_in_add_all) {
    pause_in_add_all();
  }
  DIMMUNIX_NAMED_FRAME("SyncVector::AddAll/iterate_source");
  std::lock_guard<RecursiveMutex> other_guard(other.monitor_);
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

// --- SyncHashtable --------------------------------------------------------------

void SyncHashtable::Put(int key, SyncHashtable* value) {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  entries_.emplace_back(key, value);
}

bool SyncHashtable::Equals(SyncHashtable& other) {
  DIMMUNIX_FRAME();  // Hashtable.equals
  std::lock_guard<RecursiveMutex> self_guard(monitor_);
  if (pause_in_equals) {
    pause_in_equals();
  }
  // Comparing values requires each value's monitor — when h1 is a member of
  // h2 and vice versa, two concurrent equals() calls lock in inverse order.
  DIMMUNIX_NAMED_FRAME("SyncHashtable::Equals/compare_values");
  std::lock_guard<RecursiveMutex> other_guard(other.monitor_);
  return entries_.size() == other.entries_.size();
}

// --- SyncStringBuffer ------------------------------------------------------------

void SyncStringBuffer::Set(std::string value) {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  value_ = std::move(value);
}

std::string SyncStringBuffer::Get() const {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  return value_;
}

void SyncStringBuffer::Append(SyncStringBuffer& other) {
  DIMMUNIX_FRAME();  // StringBuffer.append(StringBuffer)
  std::lock_guard<RecursiveMutex> self_guard(monitor_);
  if (pause_in_append) {
    pause_in_append();
  }
  DIMMUNIX_NAMED_FRAME("SyncStringBuffer::Append/read_source");
  std::lock_guard<RecursiveMutex> other_guard(other.monitor_);
  value_ += other.value_;
}

// --- PrintWriter / CharArrayWriter -------------------------------------------------

void SyncCharArrayWriter::Append(const std::string& text) {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  buffer_ += text;
}

void SyncCharArrayWriter::WriteTo(SyncPrintWriter& out) {
  DIMMUNIX_FRAME();  // CharArrayWriter.writeTo(w): buffer -> writer
  std::lock_guard<RecursiveMutex> self_guard(monitor_);
  if (pause_in_write_to) {
    pause_in_write_to();
  }
  DIMMUNIX_NAMED_FRAME("SyncCharArrayWriter::WriteTo/flush");
  std::lock_guard<RecursiveMutex> out_guard(out.monitor_);
  out.output_ += buffer_;
}

void SyncPrintWriter::Write(SyncCharArrayWriter& source) {
  DIMMUNIX_FRAME();  // PrintWriter.write: writer -> buffer
  std::lock_guard<RecursiveMutex> self_guard(monitor_);
  if (pause_in_write) {
    pause_in_write();
  }
  DIMMUNIX_NAMED_FRAME("SyncPrintWriter::Write/read_source");
  std::lock_guard<RecursiveMutex> source_guard(source.monitor_);
  output_ += source.buffer_;
}

std::string SyncPrintWriter::Output() const {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(monitor_);
  return output_;
}

// --- BeanContextSupport --------------------------------------------------------------

void BeanContextSupport::Add(int child) {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(children_m_);
  children_.push_back(child);
}

void BeanContextSupport::PropertyChange() {
  DIMMUNIX_FRAME();  // propertyChange: global -> children
  std::lock_guard<RecursiveMutex> global_guard(global_m_);
  if (pause_in_property_change) {
    pause_in_property_change();
  }
  DIMMUNIX_NAMED_FRAME("BeanContextSupport::PropertyChange/notify_children");
  std::lock_guard<RecursiveMutex> children_guard(children_m_);
  ++property_changes_;
}

void BeanContextSupport::Remove(int child) {
  DIMMUNIX_FRAME();  // remove: children -> global
  std::lock_guard<RecursiveMutex> children_guard(children_m_);
  if (pause_in_remove) {
    pause_in_remove();
  }
  DIMMUNIX_NAMED_FRAME("BeanContextSupport::Remove/fire_hierarchy_event");
  std::lock_guard<RecursiveMutex> global_guard(global_m_);
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (*it == child) {
      children_.erase(it);
      break;
    }
  }
}

std::size_t BeanContextSupport::ChildCount() const {
  DIMMUNIX_FRAME();
  std::lock_guard<RecursiveMutex> guard(children_m_);
  return children_.size();
}

}  // namespace dimmunix
