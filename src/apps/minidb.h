// Copyright (c) dimmunix-cpp authors. MIT license.
//
// MiniDb — a miniature storage engine reproducing the locking structure of
// MySQL bug #37080 (Table 1, MySQL 6.0.4): INSERT and TRUNCATE running in
// two different threads deadlock because INSERT takes the table's data lock
// and then its index lock, while TRUNCATE rebuilds the index first (index
// lock, then data lock).

#ifndef DIMMUNIX_APPS_MINIDB_H_
#define DIMMUNIX_APPS_MINIDB_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sync/mutex.h"

namespace dimmunix {

class MiniDb {
 public:
  explicit MiniDb(Runtime& runtime);

  void CreateTable(const std::string& name);

  // INSERT: data lock -> index lock.
  void Insert(const std::string& table, int value);
  // TRUNCATE: index lock -> data lock (the bug: inverse order).
  void Truncate(const std::string& table);
  // SELECT COUNT(*): data lock only.
  std::size_t Count(const std::string& table);
  // Point lookup through the index: index lock only.
  bool IndexContains(const std::string& table, int value);

  // Test/exploit hook: invoked while holding the first of the two locks.
  void SetMidOperationPause(std::function<void()> pause) { pause_ = std::move(pause); }

 private:
  struct Table {
    explicit Table(Runtime& runtime) : data_m(runtime), index_m(runtime) {}
    Mutex data_m;
    Mutex index_m;
    std::vector<int> rows;
    std::vector<int> index;  // sorted copy of rows
  };

  Table& Find(const std::string& name);

  Runtime& runtime_;
  Mutex catalog_m_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::function<void()> pause_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_APPS_MINIDB_H_
