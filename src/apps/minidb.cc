// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/apps/minidb.h"

#include <algorithm>

#include "src/stack/annotation.h"

namespace dimmunix {

MiniDb::MiniDb(Runtime& runtime) : runtime_(runtime), catalog_m_(runtime) {}

void MiniDb::CreateTable(const std::string& name) {
  std::lock_guard<Mutex> guard(catalog_m_);
  tables_.emplace(name, std::make_unique<Table>(runtime_));
}

MiniDb::Table& MiniDb::Find(const std::string& name) {
  std::lock_guard<Mutex> guard(catalog_m_);
  return *tables_.at(name);
}

void MiniDb::Insert(const std::string& table, int value) {
  DIMMUNIX_FRAME();
  Table& t = Find(table);
  t.data_m.lock();  // row store first...
  t.rows.push_back(value);
  if (pause_) {
    pause_();
  }
  {
    DIMMUNIX_NAMED_FRAME("MiniDb::Insert/index_update");
    t.index_m.lock();  // ...then the index
  }
  t.index.insert(std::upper_bound(t.index.begin(), t.index.end(), value), value);
  t.index_m.unlock();
  t.data_m.unlock();
}

void MiniDb::Truncate(const std::string& table) {
  DIMMUNIX_FRAME();
  Table& t = Find(table);
  t.index_m.lock();  // the bug: index first, data second — inverse of Insert
  t.index.clear();
  if (pause_) {
    pause_();
  }
  {
    DIMMUNIX_NAMED_FRAME("MiniDb::Truncate/data_drop");
    t.data_m.lock();
  }
  t.rows.clear();
  t.data_m.unlock();
  t.index_m.unlock();
}

std::size_t MiniDb::Count(const std::string& table) {
  DIMMUNIX_FRAME();
  Table& t = Find(table);
  std::lock_guard<Mutex> guard(t.data_m);
  return t.rows.size();
}

bool MiniDb::IndexContains(const std::string& table, int value) {
  DIMMUNIX_FRAME();
  Table& t = Find(table);
  std::lock_guard<Mutex> guard(t.index_m);
  return std::binary_search(t.index.begin(), t.index.end(), value);
}

}  // namespace dimmunix
