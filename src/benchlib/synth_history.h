// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Synthetic deadlock histories (§7.2.1, §7.2.2).
//
// "Since we had insufficient real deadlock signatures, we synthesized
// additional ones as random combinations of real program stacks with which
// the target system performs synchronization. From the point of view of
// avoidance overhead, synthesized signatures have the same effect as real
// ones." And for the microbenchmark: "We also wrote a tool that generates
// synthetic deadlock history files containing H signatures, all of size S."

#ifndef DIMMUNIX_BENCHLIB_SYNTH_HISTORY_H_
#define DIMMUNIX_BENCHLIB_SYNTH_HISTORY_H_

#include <cstdint>

#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

struct SynthHistoryParams {
  int signatures = 64;    // H
  int signature_size = 2; // S (threads per deadlock)
  int stack_depth = 10;   // frames per stack (the workload's tower height)
  int branching = 3;      // must match the workload's branching
  int site_choices = 0;   // distinct lock sites; 0 = same as branching
  int match_depth = 4;    // matching depth stored on each signature
  std::uint32_t seed = 42;
};

// Adds `signatures` random signatures made of workload-shaped stacks to
// `history`. Returns the number actually added (duplicates are skipped by
// History). The caller must invoke AvoidanceEngine::NotifyHistoryChanged()
// afterwards if an engine is already attached.
int GenerateSyntheticHistory(History* history, StackTable* stacks,
                             const SynthHistoryParams& params);

}  // namespace dimmunix

#endif  // DIMMUNIX_BENCHLIB_SYNTH_HISTORY_H_
