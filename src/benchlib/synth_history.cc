// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/synth_history.h"

#include <random>
#include <vector>

#include "src/benchlib/workload.h"
#include "src/stack/frame.h"

namespace dimmunix {

int GenerateSyntheticHistory(History* history, StackTable* stacks,
                             const SynthHistoryParams& params) {
  std::mt19937 rng(params.seed);
  int added_count = 0;
  for (int s = 0; s < params.signatures; ++s) {
    std::vector<StackId> sig_stacks;
    sig_stacks.reserve(static_cast<std::size_t>(params.signature_size));
    for (int k = 0; k < params.signature_size; ++k) {
      std::vector<Frame> frames;
      frames.reserve(static_cast<std::size_t>(params.stack_depth));
      // Innermost first: lock site, then tower levels 1..depth-1 — the same
      // shape the workload's capture produces.
      const int sites = params.site_choices > 0 ? params.site_choices : params.branching;
      frames.push_back(FrameFromName(
          LockSiteFrameName(static_cast<int>(rng() % static_cast<std::uint32_t>(sites)))));
      for (int level = 1; level < params.stack_depth; ++level) {
        frames.push_back(FrameFromName(TowerFrameName(
            level, static_cast<int>(rng() % static_cast<std::uint32_t>(params.branching)))));
      }
      sig_stacks.push_back(stacks->Intern(frames));
    }
    bool added = false;
    history->Add(SignatureKind::kDeadlock, std::move(sig_stacks), params.match_depth, &added);
    if (added) {
      ++added_count;
    }
  }
  return added_count;
}

}  // namespace dimmunix
