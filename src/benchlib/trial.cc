// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/trial.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace dimmunix {

TrialResult RunTrial(const std::function<int()>& body, Duration timeout) {
  TrialResult result;
  const MonoTime start = Now();
  const pid_t pid = fork();
  if (pid < 0) {
    return result;  // fork failure: reported as neither completed nor deadlocked
  }
  if (pid == 0) {
    // Child. _exit (not exit) so no parent-owned atexit handlers run twice.
    const int code = body();
    _exit(code);
  }
  const MonoTime deadline = start + timeout;
  for (;;) {
    int status = 0;
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      result.completed = WIFEXITED(status);
      result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      result.elapsed = Now() - start;
      return result;
    }
    if (Now() >= deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      result.deadlocked = true;
      result.elapsed = Now() - start;
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::uint64_t PercentileNs(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(samples.size()));
  if (rank >= samples.size()) {
    rank = samples.size() - 1;
  }
  std::nth_element(samples.begin(), samples.begin() + static_cast<long>(rank), samples.end());
  return samples[rank];
}

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars) —
// enough for benchmark labels and config values.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonDouble(double v) {
  // JSON has no NaN/Inf; clamp to 0 (a dead benchmark shows as zero
  // throughput, which bench-smoke treats as a failure).
  if (!(v == v) || v > 1e300 || v < -1e300) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::string out;
  out += "{\n  \"bench\": ";
  AppendJsonString(&out, bench);
  out += ",\n  \"config\": {";
  for (std::size_t i = 0; i < config.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, config[i].first);
    out += ": ";
    AppendJsonString(&out, config[i].second);
  }
  out += config.empty() ? "},\n" : "\n  },\n";
  out += "  \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const BenchSample& s = samples[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"label\": ";
    AppendJsonString(&out, s.label);
    out += ", \"threads\": " + std::to_string(s.threads);
    out += ", \"throughput_ops_s\": " + JsonDouble(s.throughput_ops_s);
    out += ", \"ops\": " + std::to_string(s.ops);
    out += ", \"elapsed_s\": " + JsonDouble(s.elapsed_s);
    out += ", \"p50_ns\": " + std::to_string(s.p50_ns);
    out += ", \"p99_ns\": " + std::to_string(s.p99_ns);
    out += ", \"p99_p50_ratio\": " + JsonDouble(s.TailRatio());
    out += ", \"yields\": " + std::to_string(s.yields);
    if (s.retries_per_op >= 0) {
      out += ", \"retries_per_op\": " + JsonDouble(s.retries_per_op);
    }
    out += "}";
  }
  out += samples.empty() ? "],\n" : "\n  ],\n";
  out += "  \"p50_ns\": " + std::to_string(p50_ns) + ",\n";
  out += "  \"p99_ns\": " + std::to_string(p99_ns) + ",\n";
  if (p50_ns > 0) {
    out += "  \"p99_p50_ratio\": " +
           JsonDouble(static_cast<double>(p99_ns) / static_cast<double>(p50_ns)) + ",\n";
  }
  if (p99_budget_ns > 0) {
    out += "  \"p99_budget_ns\": " + std::to_string(p99_budget_ns) + ",\n";
  }
  if (tail_budget_ratio > 0) {
    out += "  \"tail_budget_ratio\": " + JsonDouble(tail_budget_ratio) + ",\n";
  }
  out += "  \"throughput_ops_s\": " + JsonDouble(throughput_ops_s) + "\n}\n";
  return out;
}

bool BenchReport::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << ToJson();
    if (!out.good()) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace dimmunix
