// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/trial.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <thread>

namespace dimmunix {

TrialResult RunTrial(const std::function<int()>& body, Duration timeout) {
  TrialResult result;
  const MonoTime start = Now();
  const pid_t pid = fork();
  if (pid < 0) {
    return result;  // fork failure: reported as neither completed nor deadlocked
  }
  if (pid == 0) {
    // Child. _exit (not exit) so no parent-owned atexit handlers run twice.
    const int code = body();
    _exit(code);
  }
  const MonoTime deadline = start + timeout;
  for (;;) {
    int status = 0;
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      result.completed = WIFEXITED(status);
      result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      result.elapsed = Now() - start;
      return result;
    }
    if (Now() >= deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      result.deadlocked = true;
      result.elapsed = Now() - start;
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace dimmunix
