// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The §7.2.2 synchronization microbenchmark.
//
// "a synchronization-intensive microbenchmark that creates Nt threads and
// has them synchronize on locks from a total of Nl locks shared among the
// threads; a lock is held for δin time before being released and a new lock
// is requested after δout time; the delays are implemented as busy loops...
// The threads call multiple functions within the microbenchmark so as to
// build up different call stacks; which function is called at each level is
// chosen randomly, thus generating a uniformly distributed selection of call
// stacks."
//
// Modes:
//   kBaseline   — same RawMutex primitive, no engine (the "Baseline" series)
//   kDimmunix   — instrumented dimmunix::Mutex through a Runtime
//   kGateLocks  — baseline locks guarded by a GateLockAvoider (Figure 9)

#ifndef DIMMUNIX_BENCHLIB_WORKLOAD_H_
#define DIMMUNIX_BENCHLIB_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/baseline/gate_lock.h"
#include "src/common/clock.h"
#include "src/core/runtime.h"

namespace dimmunix {

enum class WorkloadMode { kBaseline, kDimmunix, kGateLocks };

struct WorkloadParams {
  WorkloadMode mode = WorkloadMode::kBaseline;
  int threads = 64;          // Nt
  int locks = 8;             // Nl
  std::int64_t delta_in_us = 1;     // δin
  std::int64_t delta_out_us = 1000; // δout
  int stack_depth = 10;      // D: call-tower height above the lock site
  int branching = 3;         // distinct callees per tower level
  // Distinct lock call sites (innermost frames); 0 = same as `branching`.
  // Figure 9 uses ~100 so the gate-lock baseline's union-find yields tens of
  // gates, as in the paper (45 gates for 64 signatures).
  int site_choices = 0;
  // δin/δout as sleeps instead of busy loops. On a single-core host a
  // busy-loop workload is CPU-bound and hides blocking costs entirely;
  // sleeping models "computation elsewhere" and makes serialization (gate
  // locks, FP yields) visible in throughput, which is what Figure 9
  // measures.
  bool sleep_inside = false;
  bool sleep_outside = false;
  Duration duration = std::chrono::milliseconds(500);
  std::uint32_t seed = 1;
  // Sample the latency of every Nth lock acquisition (the lock() call alone,
  // not the critical section) into WorkloadResult::latencies_ns. 0 = off.
  // Must be a power of two.
  int latency_sample_every = 0;
  Runtime* runtime = nullptr;          // required for kDimmunix
  GateLockAvoider* gates = nullptr;    // required for kGateLocks
};

struct WorkloadResult {
  std::uint64_t lock_ops = 0;
  double ops_per_sec = 0.0;
  std::uint64_t yields = 0;  // engine yields during the run (kDimmunix only)
  double elapsed_sec = 0.0;
  // Sampled acquisition latencies (ns), merged across threads, unsorted.
  std::vector<std::uint64_t> latencies_ns;
};

WorkloadResult RunWorkload(const WorkloadParams& params);

// The workload's frame-naming scheme, shared with the synthetic-history
// generator so that generated signatures refer to stacks the workload can
// actually produce.
std::string TowerFrameName(int level, int choice);
std::string LockSiteFrameName(int choice);

}  // namespace dimmunix

#endif  // DIMMUNIX_BENCHLIB_WORKLOAD_H_
