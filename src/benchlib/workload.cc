// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/workload.h"

#include <atomic>
#include <latch>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "src/stack/annotation.h"
#include "src/sync/mutex.h"
#include "src/sync/raw_mutex.h"

namespace dimmunix {

std::string TowerFrameName(int level, int choice) {
  return "bench::tower_L" + std::to_string(level) + "_F" + std::to_string(choice);
}

std::string LockSiteFrameName(int choice) {
  return "bench::lock_site_F" + std::to_string(choice);
}

namespace {

// Pre-resolved frame ids for the call tower, built once per (depth,
// branching) shape.
struct FrameTower {
  FrameTower(int depth, int branching, int site_choices) {
    if (site_choices <= 0) {
      site_choices = branching;
    }
    lock_sites.reserve(static_cast<std::size_t>(site_choices));
    for (int c = 0; c < site_choices; ++c) {
      lock_sites.push_back(FrameFromName(LockSiteFrameName(c)));
    }
    levels.resize(static_cast<std::size_t>(depth));
    for (int l = 1; l < depth; ++l) {
      for (int c = 0; c < branching; ++c) {
        levels[static_cast<std::size_t>(l)].push_back(FrameFromName(TowerFrameName(l, c)));
      }
    }
  }
  std::vector<Frame> lock_sites;
  std::vector<std::vector<Frame>> levels;  // levels[1..depth-1]
};

}  // namespace

WorkloadResult RunWorkload(const WorkloadParams& params) {
  const int nt = params.threads;
  const int nl = params.locks;
  FrameTower tower(params.stack_depth, params.branching, params.site_choices);

  // Lock arrays per mode. The baseline and gate-lock modes use the same
  // RawMutex primitive the instrumented Mutex wraps, so the comparison
  // isolates Dimmunix's added work.
  std::vector<std::unique_ptr<RawMutex>> raw_locks;
  std::vector<std::unique_ptr<Mutex>> dim_locks;
  if (params.mode == WorkloadMode::kDimmunix) {
    for (int i = 0; i < nl; ++i) {
      dim_locks.push_back(std::make_unique<Mutex>(*params.runtime));
    }
  } else {
    for (int i = 0; i < nl; ++i) {
      raw_locks.push_back(std::make_unique<RawMutex>());
    }
  }

  const std::uint64_t yields_before =
      params.mode == WorkloadMode::kDimmunix
          ? params.runtime->engine().stats().yields.load(std::memory_order_relaxed)
          : 0;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::latch ready(nt + 1);

  const std::uint64_t sample_mask =
      params.latency_sample_every > 0
          ? static_cast<std::uint64_t>(params.latency_sample_every) - 1
          : 0;
  std::vector<std::vector<std::uint64_t>> per_thread_latencies(
      static_cast<std::size_t>(nt));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(params.seed + static_cast<std::uint32_t>(t) * 7919u);
      std::vector<std::uint64_t>& latencies = per_thread_latencies[static_cast<std::size_t>(t)];
      ready.arrive_and_wait();
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int lock_index = static_cast<int>(rng() % static_cast<std::uint32_t>(nl));
        // Build a random call tower, outermost level first.
        for (int level = params.stack_depth - 1; level >= 1; --level) {
          const auto& choices = tower.levels[static_cast<std::size_t>(level)];
          PushAnnotatedFrame(choices[rng() % choices.size()]);
        }
        const Frame site = tower.lock_sites[rng() % tower.lock_sites.size()];
        PushAnnotatedFrame(site);

        const auto hold = [&] {
          if (params.sleep_inside) {
            std::this_thread::sleep_for(std::chrono::microseconds(params.delta_in_us));
          } else {
            BusySpinMicros(params.delta_in_us);
          }
        };
        const bool sampled = params.latency_sample_every > 0 && (ops & sample_mask) == 0;
        const MonoTime acquire_start = sampled ? Now() : MonoTime{};
        // Called immediately after the acquisition in every mode, so the
        // three modes' p50/p99 are measured identically.
        const auto record_latency = [&] {
          if (sampled) {
            latencies.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - acquire_start)
                    .count()));
          }
        };
        switch (params.mode) {
          case WorkloadMode::kBaseline: {
            RawMutex& m = *raw_locks[static_cast<std::size_t>(lock_index)];
            m.Lock();
            record_latency();
            hold();
            m.Unlock();
            break;
          }
          case WorkloadMode::kDimmunix: {
            Mutex& m = *dim_locks[static_cast<std::size_t>(lock_index)];
            m.lock();
            record_latency();
            hold();
            m.unlock();
            break;
          }
          case WorkloadMode::kGateLocks: {
            GateLockAvoider::Guard gate(*params.gates, site);
            RawMutex& m = *raw_locks[static_cast<std::size_t>(lock_index)];
            m.Lock();
            record_latency();
            hold();
            m.Unlock();
            break;
          }
        }

        for (int level = 0; level < params.stack_depth; ++level) {
          PopAnnotatedFrame();
        }
        ++ops;
        if (params.sleep_outside) {
          std::this_thread::sleep_for(std::chrono::microseconds(params.delta_out_us));
        } else {
          BusySpinMicros(params.delta_out_us);
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }

  ready.arrive_and_wait();
  const MonoTime start = Now();
  std::this_thread::sleep_for(params.duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) {
    thread.join();
  }
  const double elapsed = std::chrono::duration<double>(Now() - start).count();

  WorkloadResult result;
  result.lock_ops = total_ops.load();
  result.elapsed_sec = elapsed;
  result.ops_per_sec = elapsed > 0 ? static_cast<double>(result.lock_ops) / elapsed : 0.0;
  if (params.mode == WorkloadMode::kDimmunix) {
    result.yields =
        params.runtime->engine().stats().yields.load(std::memory_order_relaxed) - yields_before;
  }
  for (std::vector<std::uint64_t>& latencies : per_thread_latencies) {
    result.latencies_ns.insert(result.latencies_ns.end(), latencies.begin(), latencies.end());
  }
  return result;
}

}  // namespace dimmunix
