// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Trial and measurement harness for the paper-reproduction benchmarks.
//
// Two halves:
//
//  * Fork-isolated trials. §7.1.1 runs each exploit repeatedly: the
//    unprotected configurations deadlock (the process hangs and must be
//    killed), the immunized configuration completes. Deadlock recovery is
//    "most likely done via restart" (§3) — fork-per-trial reproduces exactly
//    that lifecycle, and the persistent history file carries the immunity
//    from one trial (process incarnation) to the next.
//
//  * Machine-readable perf reports. Benchmarks used to print human tables
//    only, so no tooling could track regressions. BenchReport captures one
//    benchmark run — per-configuration samples plus aggregate p50/p99
//    acquisition latency and throughput — and serializes it as the
//    BENCH_<name>.json schema consumed by CI's bench-smoke job:
//
//      {"bench": "fig5", "config": {...}, "samples": [...],
//       "p50_ns": ..., "p99_ns": ..., "throughput_ops_s": ...}

#ifndef DIMMUNIX_BENCHLIB_TRIAL_H_
#define DIMMUNIX_BENCHLIB_TRIAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace dimmunix {

struct TrialResult {
  bool completed = false;   // child exited on its own
  bool deadlocked = false;  // child had to be killed (timeout)
  int exit_code = -1;
  Duration elapsed{};
};

// Forks; the child runs `body` and exits with its return value. The parent
// waits up to `timeout`, killing the child (SIGKILL) if it is still alive —
// which the caller interprets as a deadlock.
TrialResult RunTrial(const std::function<int()>& body, Duration timeout);

// --- Machine-readable perf reports ------------------------------------------

// The percentile of an (unsorted) latency sample set, nearest-rank method.
// Returns 0 on an empty set. `q` in [0, 1] (0.5 = p50, 0.99 = p99).
std::uint64_t PercentileNs(std::vector<std::uint64_t> samples, double q);

// One measured configuration of a benchmark (one point on a figure curve).
struct BenchSample {
  std::string label;        // e.g. "dimmunix" / "baseline" / "instr"
  int threads = 0;
  double throughput_ops_s = 0.0;
  std::uint64_t ops = 0;
  double elapsed_s = 0.0;
  std::uint64_t p50_ns = 0;  // sampled acquisition latency percentiles
  std::uint64_t p99_ns = 0;
  std::uint64_t yields = 0;
  // Fast-path cover revalidations per lock op (match_fast_retries / ops).
  // The churn signal the match_churn health rule alerts on; negative =
  // not measured (baseline samples have no engine). Emitted in the JSON
  // only when set, so committed pre-existing reports stay valid.
  double retries_per_op = -1.0;

  // Tail ratio: how many medians deep the p99 sits. The number the
  // bench-smoke tail gate budgets — a convoy (epoch or otherwise) shows up
  // here before it moves the throughput needle.
  double TailRatio() const {
    return p50_ns > 0 ? static_cast<double>(p99_ns) / static_cast<double>(p50_ns) : 0.0;
  }
};

// One benchmark run. `config` keys/values land verbatim in the JSON config
// object (values are emitted as JSON strings).
struct BenchReport {
  std::string bench;  // "fig5", "fig8"
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<BenchSample> samples;
  // Aggregates: the headline numbers CI tracks across commits. Callers set
  // them from the representative sample (benchjson uses the instrumented
  // run at the highest thread count).
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  double throughput_ops_s = 0.0;
  // The committed tail-latency budget for this benchmark: CI's bench-smoke
  // gate fails when a run's p99_ns exceeds it. 0 = no gate. Budgets are
  // deliberately loose (~10x the committed p99) — they catch convoy-class
  // regressions, not scheduler noise.
  std::uint64_t p99_budget_ns = 0;
  // Tail-ratio budget (p99 ≤ budget × p50) enforced per instrumented sample
  // by scripts/bench_gate.py — but only for samples whose thread count is at
  // most 2×cpus. Beyond that the run queue is oversubscribed and a sampled
  // p99 measures kernel wake-to-run latency of parked yielders, not engine
  // behavior (see docs/performance.md). 0 = no ratio gate.
  double tail_budget_ratio = 0.0;

  std::string ToJson() const;
  // Atomically writes ToJson() to `path` (tmp + rename). Returns false on
  // I/O failure.
  bool WriteFile(const std::string& path) const;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_BENCHLIB_TRIAL_H_
