// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Fork-isolated trial runner.
//
// §7.1.1 runs each exploit repeatedly: the unprotected configurations
// deadlock (the process hangs and must be killed), the immunized
// configuration completes. Deadlock recovery is "most likely done via
// restart" (§3) — fork-per-trial reproduces exactly that lifecycle, and the
// persistent history file carries the immunity from one trial (process
// incarnation) to the next.

#ifndef DIMMUNIX_BENCHLIB_TRIAL_H_
#define DIMMUNIX_BENCHLIB_TRIAL_H_

#include <chrono>
#include <functional>
#include <string>

#include "src/common/clock.h"

namespace dimmunix {

struct TrialResult {
  bool completed = false;   // child exited on its own
  bool deadlocked = false;  // child had to be killed (timeout)
  int exit_code = -1;
  Duration elapsed{};
};

// Forks; the child runs `body` and exits with its return value. The parent
// waits up to `timeout`, killing the child (SIGKILL) if it is still alive —
// which the caller interprets as a deadlock.
TrialResult RunTrial(const std::function<int()>& body, Duration timeout);

}  // namespace dimmunix

#endif  // DIMMUNIX_BENCHLIB_TRIAL_H_
