// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/cond_var.h"

namespace dimmunix {

void CondVar::Wait(Mutex& m) {
  std::unique_lock<std::mutex> internal(internal_m_);
  // Classic two-lock condvar: holding internal_m_ across the mutex release
  // closes the lost-wakeup window, because notifiers must take internal_m_
  // before signaling.
  m.Unlock();
  cv_.wait(internal);
  internal.unlock();
  (void)m.Lock();
}

bool CondVar::WaitFor(Mutex& m, Duration timeout) {
  std::unique_lock<std::mutex> internal(internal_m_);
  m.Unlock();
  const std::cv_status status = cv_.wait_for(internal, timeout);
  internal.unlock();
  (void)m.Lock();
  return status != std::cv_status::timeout;
}

void CondVar::NotifyOne() {
  std::lock_guard<std::mutex> internal(internal_m_);
  cv_.notify_one();
}

void CondVar::NotifyAll() {
  std::lock_guard<std::mutex> internal(internal_m_);
  cv_.notify_all();
}

}  // namespace dimmunix
