// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/raw_mutex.h"

namespace dimmunix {

void RawMutex::Lock() {
  std::unique_lock<std::mutex> guard(m_);
  cv_.wait(guard, [this] { return !locked_; });
  locked_ = true;
  owner_ = std::this_thread::get_id();
}

bool RawMutex::LockCancellable(ThreadSlot* slot) {
  // Register a canceler so the monitor can wake this blocked thread.
  {
    std::lock_guard<std::mutex> c(slot->canceler_m);
    slot->acquisition_canceler = [this] {
      std::lock_guard<std::mutex> guard(m_);
      cv_.notify_all();
    };
  }
  bool acquired = false;
  {
    std::unique_lock<std::mutex> guard(m_);
    for (;;) {
      if (slot->acquisition_canceled.load(std::memory_order_acquire)) {
        slot->acquisition_canceled.store(false, std::memory_order_release);
        break;
      }
      if (!locked_) {
        locked_ = true;
        owner_ = std::this_thread::get_id();
        acquired = true;
        break;
      }
      cv_.wait(guard);
    }
  }
  {
    std::lock_guard<std::mutex> c(slot->canceler_m);
    slot->acquisition_canceler = nullptr;
  }
  return acquired;
}

bool RawMutex::LockUntil(MonoTime deadline, ThreadSlot* slot, bool* canceled) {
  if (canceled != nullptr) {
    *canceled = false;
  }
  if (slot != nullptr) {
    std::lock_guard<std::mutex> c(slot->canceler_m);
    slot->acquisition_canceler = [this] {
      std::lock_guard<std::mutex> guard(m_);
      cv_.notify_all();
    };
  }
  bool acquired = false;
  {
    std::unique_lock<std::mutex> guard(m_);
    for (;;) {
      if (slot != nullptr && slot->acquisition_canceled.load(std::memory_order_acquire)) {
        slot->acquisition_canceled.store(false, std::memory_order_release);
        if (canceled != nullptr) {
          *canceled = true;
        }
        break;
      }
      if (!locked_) {
        locked_ = true;
        owner_ = std::this_thread::get_id();
        acquired = true;
        break;
      }
      if (cv_.wait_until(guard, deadline) == std::cv_status::timeout) {
        if (!locked_) {
          locked_ = true;
          owner_ = std::this_thread::get_id();
          acquired = true;
        }
        break;
      }
    }
  }
  if (slot != nullptr) {
    std::lock_guard<std::mutex> c(slot->canceler_m);
    slot->acquisition_canceler = nullptr;
  }
  return acquired;
}

bool RawMutex::TryLock() {
  std::lock_guard<std::mutex> guard(m_);
  if (locked_) {
    return false;
  }
  locked_ = true;
  owner_ = std::this_thread::get_id();
  return true;
}

void RawMutex::Unlock() {
  {
    std::lock_guard<std::mutex> guard(m_);
    locked_ = false;
    owner_ = std::thread::id{};
  }
  cv_.notify_one();
}

bool RawMutex::OwnedByCurrentThread() const {
  std::lock_guard<std::mutex> guard(m_);
  return locked_ && owner_ == std::this_thread::get_id();
}

}  // namespace dimmunix
