// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/mutex.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace dimmunix {

void AbortOnLockFailure(const char* op, LockResult result) {
  const char* reason = result == LockResult::kSelfDeadlock
                           ? "self-deadlock (non-recursive lock re-acquired by its owner)"
                           : "acquisition broken by deadlock recovery";
  DIMMUNIX_LOG(kError) << op << "() failed in scoped usage: " << reason
                       << "; aborting (use the result-returning Lock() to handle this)";
  std::abort();
}

LockResult Mutex::Lock() {
  if (raw_.OwnedByCurrentThread()) {
    return LockResult::kSelfDeadlock;  // PTHREAD_MUTEX_ERRORCHECK behavior
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kExclusive);
  if (!op.Granted()) {
    return LockResult::kBroken;
  }
  // kGo (or kReentrant, unreachable given the owner check above): block on
  // the underlying mutex, cancellably.
  if (raw_.LockCancellable(&op.slot())) {
    op.Commit();
    return LockResult::kOk;
  }
  op.Cancel();
  runtime_->engine().stats().broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return LockResult::kBroken;
}

bool Mutex::TryLock() {
  if (raw_.OwnedByCurrentThread()) {
    return false;
  }
  AcquireOp op = runtime_->TryBeginAcquire(id(), AcquireMode::kExclusive);
  if (!op.Granted()) {
    return false;  // entering the pattern would be dangerous: report busy
  }
  if (raw_.TryLock()) {
    op.Commit();
    return true;
  }
  op.Cancel();  // §6 cancel event
  return false;
}

bool Mutex::LockFor(Duration timeout) { return LockUntil(Now() + timeout); }

bool Mutex::LockUntil(MonoTime deadline) {
  if (raw_.OwnedByCurrentThread()) {
    return false;
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kExclusive, deadline);
  if (!op.Granted()) {
    return false;  // kTimedOut or kBroken: the engine already rolled back
  }
  bool canceled = false;
  if (raw_.LockUntil(deadline, &op.slot(), &canceled)) {
    op.Commit();
    return true;
  }
  op.Cancel();  // timeout rollback (§6 cancel event)
  return false;
}

void Mutex::Unlock() {
  runtime_->EndRelease(id());  // release precedes the actual unlock (§5.2)
  raw_.Unlock();
}

LockResult RecursiveMutex::Lock() {
  if (raw_.OwnedByCurrentThread()) {
    AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kExclusive);  // kReentrant
    ++depth_;
    op.Commit();  // keep the RAG's hold multiset in step
    return LockResult::kOk;
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kExclusive);
  if (!op.Granted()) {
    return LockResult::kBroken;
  }
  if (raw_.LockCancellable(&op.slot())) {
    depth_ = 1;
    op.Commit();
    return LockResult::kOk;
  }
  op.Cancel();
  runtime_->engine().stats().broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return LockResult::kBroken;
}

bool RecursiveMutex::TryLock() {
  if (raw_.OwnedByCurrentThread()) {
    AcquireOp op = runtime_->TryBeginAcquire(id(), AcquireMode::kExclusive);  // kReentrant
    ++depth_;
    op.Commit();
    return true;
  }
  AcquireOp op = runtime_->TryBeginAcquire(id(), AcquireMode::kExclusive);
  if (!op.Granted()) {
    return false;
  }
  if (raw_.TryLock()) {
    depth_ = 1;
    op.Commit();
    return true;
  }
  op.Cancel();
  return false;
}

void RecursiveMutex::Unlock() {
  runtime_->EndRelease(id());
  if (--depth_ <= 0) {
    depth_ = 0;
    raw_.Unlock();
  }
}

}  // namespace dimmunix
