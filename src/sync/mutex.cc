// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/mutex.h"

namespace dimmunix {

LockResult Mutex::Lock() {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  if (raw_.OwnedByCurrentThread()) {
    return LockResult::kSelfDeadlock;  // PTHREAD_MUTEX_ERRORCHECK behavior
  }
  for (;;) {
    const RequestDecision decision = engine.Request(tid, id());
    if (decision == RequestDecision::kBroken) {
      return LockResult::kBroken;
    }
    // kGo (or kReentrant, unreachable given the owner check above): block on
    // the underlying mutex, cancellably.
    ThreadSlot& slot = engine.registry().Slot(tid);
    if (raw_.LockCancellable(&slot)) {
      engine.Acquired(tid, id());
      return LockResult::kOk;
    }
    engine.CancelRequest(tid, id());
    engine.stats().broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
    return LockResult::kBroken;
  }
}

bool Mutex::TryLock() {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  if (raw_.OwnedByCurrentThread()) {
    return false;
  }
  if (!engine.RequestNonblocking(tid, id())) {
    return false;  // entering the pattern would be dangerous: report busy
  }
  if (raw_.TryLock()) {
    engine.Acquired(tid, id());
    return true;
  }
  engine.CancelRequest(tid, id());  // §6 cancel event
  return false;
}

bool Mutex::LockFor(Duration timeout) { return LockUntil(Now() + timeout); }

bool Mutex::LockUntil(MonoTime deadline) {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  if (raw_.OwnedByCurrentThread()) {
    return false;
  }
  const RequestDecision decision = engine.Request(tid, id(), deadline);
  if (decision == RequestDecision::kTimedOut || decision == RequestDecision::kBroken) {
    return false;
  }
  ThreadSlot& slot = engine.registry().Slot(tid);
  bool canceled = false;
  if (raw_.LockUntil(deadline, &slot, &canceled)) {
    engine.Acquired(tid, id());
    return true;
  }
  engine.CancelRequest(tid, id());  // timeout rollback (§6 cancel event)
  return false;
}

void Mutex::Unlock() {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  engine.Release(tid, id());  // release precedes the actual unlock (§5.2)
  raw_.Unlock();
}

LockResult RecursiveMutex::Lock() {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  if (raw_.OwnedByCurrentThread()) {
    ++depth_;
    engine.Acquired(tid, id());  // keep the RAG's hold multiset in step
    return LockResult::kOk;
  }
  for (;;) {
    const RequestDecision decision = engine.Request(tid, id());
    if (decision == RequestDecision::kBroken) {
      return LockResult::kBroken;
    }
    ThreadSlot& slot = engine.registry().Slot(tid);
    if (raw_.LockCancellable(&slot)) {
      depth_ = 1;
      engine.Acquired(tid, id());
      return LockResult::kOk;
    }
    engine.CancelRequest(tid, id());
    engine.stats().broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
    return LockResult::kBroken;
  }
}

bool RecursiveMutex::TryLock() {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  if (raw_.OwnedByCurrentThread()) {
    ++depth_;
    engine.Acquired(tid, id());
    return true;
  }
  if (!engine.RequestNonblocking(tid, id())) {
    return false;
  }
  if (raw_.TryLock()) {
    depth_ = 1;
    engine.Acquired(tid, id());
    return true;
  }
  engine.CancelRequest(tid, id());
  return false;
}

void RecursiveMutex::Unlock() {
  AvoidanceEngine& engine = runtime_->engine();
  const ThreadId tid = runtime_->RegisterCurrentThread();
  engine.Release(tid, id());
  if (--depth_ <= 0) {
    depth_ = 0;
    raw_.Unlock();
  }
}

}  // namespace dimmunix
