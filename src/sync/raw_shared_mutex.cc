// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/raw_shared_mutex.h"

#include <algorithm>

namespace dimmunix {

void RawSharedMutex::GrantExclusiveLocked() {
  writer_ = true;
  writer_id_ = std::this_thread::get_id();
}

void RawSharedMutex::GrantSharedLocked() { readers_.push_back(std::this_thread::get_id()); }

void RawSharedMutex::RegisterCanceler(ThreadSlot* slot) {
  std::lock_guard<std::mutex> c(slot->canceler_m);
  slot->acquisition_canceler = [this] {
    std::lock_guard<std::mutex> guard(m_);
    cv_.notify_all();
  };
}

void RawSharedMutex::ClearCanceler(ThreadSlot* slot) {
  std::lock_guard<std::mutex> c(slot->canceler_m);
  slot->acquisition_canceler = nullptr;
}

void RawSharedMutex::LockExclusive() {
  std::unique_lock<std::mutex> guard(m_);
  cv_.wait(guard, [this] { return ExclusiveFreeLocked(); });
  GrantExclusiveLocked();
}

bool RawSharedMutex::LockExclusiveCancellable(ThreadSlot* slot) {
  RegisterCanceler(slot);
  bool acquired = false;
  {
    std::unique_lock<std::mutex> guard(m_);
    for (;;) {
      if (slot->acquisition_canceled.load(std::memory_order_acquire)) {
        slot->acquisition_canceled.store(false, std::memory_order_release);
        break;
      }
      if (ExclusiveFreeLocked()) {
        GrantExclusiveLocked();
        acquired = true;
        break;
      }
      cv_.wait(guard);
    }
  }
  ClearCanceler(slot);
  return acquired;
}

bool RawSharedMutex::LockExclusiveUntil(MonoTime deadline, ThreadSlot* slot, bool* canceled) {
  if (canceled != nullptr) {
    *canceled = false;
  }
  if (slot != nullptr) {
    RegisterCanceler(slot);
  }
  bool acquired = false;
  {
    std::unique_lock<std::mutex> guard(m_);
    for (;;) {
      if (slot != nullptr && slot->acquisition_canceled.load(std::memory_order_acquire)) {
        slot->acquisition_canceled.store(false, std::memory_order_release);
        if (canceled != nullptr) {
          *canceled = true;
        }
        break;
      }
      if (ExclusiveFreeLocked()) {
        GrantExclusiveLocked();
        acquired = true;
        break;
      }
      if (cv_.wait_until(guard, deadline) == std::cv_status::timeout) {
        if (ExclusiveFreeLocked()) {
          GrantExclusiveLocked();
          acquired = true;
        }
        break;
      }
    }
  }
  if (slot != nullptr) {
    ClearCanceler(slot);
  }
  return acquired;
}

bool RawSharedMutex::TryLockExclusive() {
  std::lock_guard<std::mutex> guard(m_);
  if (!ExclusiveFreeLocked()) {
    return false;
  }
  GrantExclusiveLocked();
  return true;
}

void RawSharedMutex::UnlockExclusive() {
  {
    std::lock_guard<std::mutex> guard(m_);
    writer_ = false;
    writer_id_ = std::thread::id{};
  }
  cv_.notify_all();
}

void RawSharedMutex::LockShared() {
  std::unique_lock<std::mutex> guard(m_);
  cv_.wait(guard, [this] { return SharedFreeLocked(); });
  GrantSharedLocked();
}

bool RawSharedMutex::LockSharedCancellable(ThreadSlot* slot) {
  RegisterCanceler(slot);
  bool acquired = false;
  {
    std::unique_lock<std::mutex> guard(m_);
    for (;;) {
      if (slot->acquisition_canceled.load(std::memory_order_acquire)) {
        slot->acquisition_canceled.store(false, std::memory_order_release);
        break;
      }
      if (SharedFreeLocked()) {
        GrantSharedLocked();
        acquired = true;
        break;
      }
      cv_.wait(guard);
    }
  }
  ClearCanceler(slot);
  return acquired;
}

bool RawSharedMutex::LockSharedUntil(MonoTime deadline, ThreadSlot* slot, bool* canceled) {
  if (canceled != nullptr) {
    *canceled = false;
  }
  if (slot != nullptr) {
    RegisterCanceler(slot);
  }
  bool acquired = false;
  {
    std::unique_lock<std::mutex> guard(m_);
    for (;;) {
      if (slot != nullptr && slot->acquisition_canceled.load(std::memory_order_acquire)) {
        slot->acquisition_canceled.store(false, std::memory_order_release);
        if (canceled != nullptr) {
          *canceled = true;
        }
        break;
      }
      if (SharedFreeLocked()) {
        GrantSharedLocked();
        acquired = true;
        break;
      }
      if (cv_.wait_until(guard, deadline) == std::cv_status::timeout) {
        if (SharedFreeLocked()) {
          GrantSharedLocked();
          acquired = true;
        }
        break;
      }
    }
  }
  if (slot != nullptr) {
    ClearCanceler(slot);
  }
  return acquired;
}

bool RawSharedMutex::TryLockShared() {
  std::lock_guard<std::mutex> guard(m_);
  if (!SharedFreeLocked()) {
    return false;
  }
  GrantSharedLocked();
  return true;
}

void RawSharedMutex::UnlockShared() {
  {
    std::lock_guard<std::mutex> guard(m_);
    const auto me = std::this_thread::get_id();
    auto it = std::find(readers_.begin(), readers_.end(), me);
    if (it != readers_.end()) {
      readers_.erase(it);
    }
  }
  cv_.notify_all();
}

bool RawSharedMutex::ExclusiveOwnedByCurrentThread() const {
  std::lock_guard<std::mutex> guard(m_);
  return writer_ && writer_id_ == std::this_thread::get_id();
}

bool RawSharedMutex::SharedOwnedByCurrentThread() const {
  std::lock_guard<std::mutex> guard(m_);
  return std::find(readers_.begin(), readers_.end(), std::this_thread::get_id()) !=
         readers_.end();
}

}  // namespace dimmunix
