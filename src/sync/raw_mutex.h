// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The uninstrumented mutex under every dimmunix::Mutex.
//
// It is deliberately *not* a plain std::mutex: acquisitions must be
// cancellable so that (a) the monitor can break a deadlock victim out of its
// blocked acquisition when DeadlockAction::kBreakVictim is configured, and
// (b) timed acquisitions compose with the engine's yield logic. The
// implementation is a condvar-protected flag — slower than a futex fast
// path, but the benchmarks always compare against a baseline built from the
// same primitive, so relative overheads (the quantity the paper reports)
// are preserved.

#ifndef DIMMUNIX_SYNC_RAW_MUTEX_H_
#define DIMMUNIX_SYNC_RAW_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/core/thread_registry.h"

namespace dimmunix {

class RawMutex {
 public:
  RawMutex() = default;
  RawMutex(const RawMutex&) = delete;
  RawMutex& operator=(const RawMutex&) = delete;

  // Plain blocking acquisition (used by the baseline and by CondVar).
  void Lock();

  // Blocking acquisition that can be canceled through `slot` (the engine's
  // CancelAcquisition). Returns false if canceled before the lock was
  // obtained.
  bool LockCancellable(ThreadSlot* slot);

  // Timed variant; returns false on timeout or cancellation (*canceled set
  // accordingly when non-null).
  bool LockUntil(MonoTime deadline, ThreadSlot* slot, bool* canceled);

  bool TryLock();
  void Unlock();

  bool OwnedByCurrentThread() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool locked_ = false;
  std::thread::id owner_{};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SYNC_RAW_MUTEX_H_
