// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The uninstrumented reader-writer lock under every dimmunix::SharedMutex —
// the shared-mode counterpart of RawMutex, built from the same
// condvar-protected state so acquisitions stay cancellable (deadlock
// recovery can break a blocked writer or reader out) and timed variants
// compose with the engine's yield logic.
//
// Semantics match pthread_rwlock without writer preference: a writer waits
// until there is no writer and no readers; a reader waits only while a
// writer *holds* the lock. Reader re-acquisition by the same thread is
// permitted (recursive read holds), and the holder sets are tracked by
// thread id so the instrumented layer can detect self-deadlocking upgrades
// before blocking on them.

#ifndef DIMMUNIX_SYNC_RAW_SHARED_MUTEX_H_
#define DIMMUNIX_SYNC_RAW_SHARED_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/thread_registry.h"

namespace dimmunix {

class RawSharedMutex {
 public:
  RawSharedMutex() = default;
  RawSharedMutex(const RawSharedMutex&) = delete;
  RawSharedMutex& operator=(const RawSharedMutex&) = delete;

  // --- Writer side ----------------------------------------------------------
  void LockExclusive();
  bool LockExclusiveCancellable(ThreadSlot* slot);
  bool LockExclusiveUntil(MonoTime deadline, ThreadSlot* slot, bool* canceled);
  bool TryLockExclusive();
  void UnlockExclusive();

  // --- Reader side ----------------------------------------------------------
  void LockShared();
  bool LockSharedCancellable(ThreadSlot* slot);
  bool LockSharedUntil(MonoTime deadline, ThreadSlot* slot, bool* canceled);
  bool TryLockShared();
  void UnlockShared();

  bool ExclusiveOwnedByCurrentThread() const;
  // True when the calling thread has at least one outstanding read hold.
  bool SharedOwnedByCurrentThread() const;

 private:
  bool ExclusiveFreeLocked() const { return !writer_ && readers_.empty(); }
  bool SharedFreeLocked() const { return !writer_; }
  void GrantExclusiveLocked();
  void GrantSharedLocked();
  void RegisterCanceler(ThreadSlot* slot);
  void ClearCanceler(ThreadSlot* slot);

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool writer_ = false;
  std::thread::id writer_id_{};
  std::vector<std::thread::id> readers_;  // one entry per read hold (recursion)
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SYNC_RAW_SHARED_MUTEX_H_
