// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Instrumented reader-writer lock — the first lock family beyond exclusive
// mutexes to ride the acquisition port (src/core/acquire.h). Every writer
// acquisition runs the protocol in AcquireMode::kExclusive and every reader
// acquisition in AcquireMode::kShared, so the engine sees reader-writer
// cycles (writer-vs-writer through a reader, rwlock upgrade deadlocks, the
// mixed rwlock+mutex patterns of HawkNL/SQLite) while reader-reader
// coexistence never yields, never forms a cycle, and never produces a
// signature.
//
// Method names follow the house style (Lock/LockShared/...) with
// std::shared_mutex-compatible lowercase shims, so std::shared_lock,
// std::unique_lock, and std::lock_guard all work.
//
// Upgrade attempts by a thread that already holds a read lock return
// kSelfDeadlock instead of blocking forever (POSIX leaves this undefined;
// glibc deadlocks). Genuine multi-thread upgrade races still reach the
// engine and are detected/avoided like any other cycle.

#ifndef DIMMUNIX_SYNC_SHARED_MUTEX_H_
#define DIMMUNIX_SYNC_SHARED_MUTEX_H_

#include "src/core/runtime.h"
#include "src/sync/mutex.h"
#include "src/sync/raw_shared_mutex.h"

namespace dimmunix {

class SharedMutex {
 public:
  explicit SharedMutex(Runtime& runtime = Runtime::Global()) : runtime_(&runtime) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // --- Writer side ----------------------------------------------------------
  LockResult Lock();
  bool TryLock();
  bool LockFor(Duration timeout);
  bool LockUntil(MonoTime deadline);
  void Unlock();

  // --- Reader side ----------------------------------------------------------
  LockResult LockShared();
  bool TryLockShared();
  bool LockSharedFor(Duration timeout);
  bool LockSharedUntil(MonoTime deadline);
  void UnlockShared();

  // The execution-scoped identity used in the RAG (the object's address,
  // like pthreads). Reader and writer sides share it: one lock, two modes.
  LockId id() const { return reinterpret_cast<LockId>(this); }
  Runtime& runtime() { return *runtime_; }

  // std::shared_mutex-compatible names, so std::shared_lock / unique_lock /
  // lock_guard work. Like Mutex::lock(), failures abort loudly — scoped
  // usage has no channel for a result.
  void lock() {
    if (const LockResult result = Lock(); result != LockResult::kOk) {
      AbortOnLockFailure("SharedMutex::lock", result);
    }
  }
  bool try_lock() { return TryLock(); }
  void unlock() { Unlock(); }
  void lock_shared() {
    if (const LockResult result = LockShared(); result != LockResult::kOk) {
      AbortOnLockFailure("SharedMutex::lock_shared", result);
    }
  }
  bool try_lock_shared() { return TryLockShared(); }
  void unlock_shared() { UnlockShared(); }

 private:
  Runtime* runtime_;
  RawSharedMutex raw_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SYNC_SHARED_MUTEX_H_
