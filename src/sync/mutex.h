// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Instrumented lock types — the drop-in replacements that play the role of
// the modified NPTL/libthr libraries of §6. Every acquisition runs the full
// Dimmunix protocol through the acquisition port (src/core/acquire.h):
//
//     Runtime::BeginAcquire -> GO | YIELD (park, retry)   (§5.4)
//     block on the underlying mutex
//     op.Commit()                                 (RAG cache: allow -> hold)
//     ... critical section ...
//     release, then unlock                        (ordering required by §5.2)
//
// Mutex matches PTHREAD_MUTEX_ERRORCHECK semantics for self-deadlock
// (Dimmunix "does not watch for self-deadlocks, since pthreads already
// offers the error-checking mutex option"); RecursiveMutex matches
// PTHREAD_MUTEX_RECURSIVE; TryLock/LockFor mirror pthread_mutex_trylock /
// pthread_mutex_timedlock, including the `cancel` rollback event of §6.
// The reader-writer counterpart lives in src/sync/shared_mutex.h.

#ifndef DIMMUNIX_SYNC_MUTEX_H_
#define DIMMUNIX_SYNC_MUTEX_H_

#include <cstdint>

#include "src/core/runtime.h"
#include "src/sync/raw_mutex.h"

namespace dimmunix {

enum class LockResult {
  kOk,
  kSelfDeadlock,  // non-recursive mutex re-acquired by its owner (EDEADLK)
  kBroken,        // acquisition canceled by deadlock recovery
};

// Shared by every sync type's BasicLockable shim: scoped usage (lock_guard,
// unique_lock, shared_lock) has no channel for a failure result, so a
// failed acquisition aborts loudly instead of silently continuing without
// the lock. `op` names the method, e.g. "Mutex::lock".
[[noreturn]] void AbortOnLockFailure(const char* op, LockResult result);

class Mutex {
 public:
  explicit Mutex(Runtime& runtime = Runtime::Global()) : runtime_(&runtime) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  LockResult Lock();
  bool TryLock();
  // Timed acquisition; false on timeout.
  bool LockFor(Duration timeout);
  bool LockUntil(MonoTime deadline);
  void Unlock();

  // The execution-scoped identity used in the RAG (the object's address,
  // like pthreads).
  LockId id() const { return reinterpret_cast<LockId>(this); }
  Runtime& runtime() { return *runtime_; }

  // BasicLockable / Lockable, so std::lock_guard and friends work. lock()
  // treats kBroken/kSelfDeadlock as programming errors in scoped usage:
  // scoped callers have no way to observe the failure, so it aborts loudly
  // rather than running the critical section without the lock. Code that
  // can handle kBroken (deadlock recovery) must call Lock() instead.
  void lock() {
    if (const LockResult result = Lock(); result != LockResult::kOk) {
      AbortOnLockFailure("Mutex::lock", result);
    }
  }
  void unlock() { Unlock(); }
  bool try_lock() { return TryLock(); }

 private:
  friend class CondVar;
  Runtime* runtime_;
  RawMutex raw_;
};

class RecursiveMutex {
 public:
  explicit RecursiveMutex(Runtime& runtime = Runtime::Global()) : runtime_(&runtime) {}

  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  LockResult Lock();
  bool TryLock();
  void Unlock();

  LockId id() const { return reinterpret_cast<LockId>(this); }
  int recursion_depth() const { return depth_; }

  void lock() {
    if (const LockResult result = Lock(); result != LockResult::kOk) {
      AbortOnLockFailure("RecursiveMutex::lock", result);
    }
  }
  void unlock() { Unlock(); }
  bool try_lock() { return TryLock(); }

 private:
  Runtime* runtime_;
  RawMutex raw_;
  int depth_ = 0;  // mutated only by the owning thread
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SYNC_MUTEX_H_
