// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/shared_mutex.h"

namespace dimmunix {

LockResult SharedMutex::Lock() {
  if (raw_.ExclusiveOwnedByCurrentThread() || raw_.SharedOwnedByCurrentThread()) {
    // Re-lock by the writer, or an upgrade while holding a read lock — both
    // would block on our own hold forever (POSIX undefined; glibc hangs).
    return LockResult::kSelfDeadlock;
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kExclusive);
  if (!op.Granted()) {
    return LockResult::kBroken;
  }
  if (raw_.LockExclusiveCancellable(&op.slot())) {
    op.Commit();
    return LockResult::kOk;
  }
  op.Cancel();
  runtime_->engine().stats().broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return LockResult::kBroken;
}

bool SharedMutex::TryLock() {
  if (raw_.ExclusiveOwnedByCurrentThread() || raw_.SharedOwnedByCurrentThread()) {
    return false;
  }
  AcquireOp op = runtime_->TryBeginAcquire(id(), AcquireMode::kExclusive);
  if (!op.Granted()) {
    return false;
  }
  if (raw_.TryLockExclusive()) {
    op.Commit();
    return true;
  }
  op.Cancel();
  return false;
}

bool SharedMutex::LockFor(Duration timeout) { return LockUntil(Now() + timeout); }

bool SharedMutex::LockUntil(MonoTime deadline) {
  if (raw_.ExclusiveOwnedByCurrentThread() || raw_.SharedOwnedByCurrentThread()) {
    return false;
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kExclusive, deadline);
  if (!op.Granted()) {
    return false;
  }
  bool canceled = false;
  if (raw_.LockExclusiveUntil(deadline, &op.slot(), &canceled)) {
    op.Commit();
    return true;
  }
  op.Cancel();
  return false;
}

void SharedMutex::Unlock() {
  runtime_->EndRelease(id());  // release precedes the actual unlock (§5.2)
  raw_.UnlockExclusive();
}

LockResult SharedMutex::LockShared() {
  if (raw_.ExclusiveOwnedByCurrentThread()) {
    return LockResult::kSelfDeadlock;  // rdlock while writing: EDEADLK
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kShared);
  if (!op.Granted()) {
    return LockResult::kBroken;
  }
  if (raw_.LockSharedCancellable(&op.slot())) {
    op.Commit();
    return LockResult::kOk;
  }
  op.Cancel();
  runtime_->engine().stats().broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return LockResult::kBroken;
}

bool SharedMutex::TryLockShared() {
  if (raw_.ExclusiveOwnedByCurrentThread()) {
    return false;
  }
  AcquireOp op = runtime_->TryBeginAcquire(id(), AcquireMode::kShared);
  if (!op.Granted()) {
    return false;
  }
  if (raw_.TryLockShared()) {
    op.Commit();
    return true;
  }
  op.Cancel();
  return false;
}

bool SharedMutex::LockSharedFor(Duration timeout) { return LockSharedUntil(Now() + timeout); }

bool SharedMutex::LockSharedUntil(MonoTime deadline) {
  if (raw_.ExclusiveOwnedByCurrentThread()) {
    return false;
  }
  AcquireOp op = runtime_->BeginAcquire(id(), AcquireMode::kShared, deadline);
  if (!op.Granted()) {
    return false;
  }
  bool canceled = false;
  if (raw_.LockSharedUntil(deadline, &op.slot(), &canceled)) {
    op.Commit();
    return true;
  }
  op.Cancel();
  return false;
}

void SharedMutex::UnlockShared() {
  runtime_->EndRelease(id());
  raw_.UnlockShared();
}

}  // namespace dimmunix
