// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Condition variable paired with dimmunix::Mutex ("locks associated with
// conditional variables are also instrumented", §6). Wait() releases the
// instrumented mutex through the full Dimmunix path (emitting the release
// event), sleeps, and re-acquires through the full path (running avoidance
// on the way back in).

#ifndef DIMMUNIX_SYNC_COND_VAR_H_
#define DIMMUNIX_SYNC_COND_VAR_H_

#include <condition_variable>
#include <mutex>

#include "src/common/clock.h"
#include "src/sync/mutex.h"

namespace dimmunix {

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `m` and sleeps; re-acquires `m` before returning.
  // `m` must be held by the caller.
  void Wait(Mutex& m);

  template <typename Predicate>
  void Wait(Mutex& m, Predicate pred) {
    while (!pred()) {
      Wait(m);
    }
  }

  // Returns false on timeout (the mutex is re-acquired either way).
  bool WaitFor(Mutex& m, Duration timeout);

  void NotifyOne();
  void NotifyAll();

 private:
  std::mutex internal_m_;
  std::condition_variable cv_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SYNC_COND_VAR_H_
