// Copyright (c) dimmunix-cpp authors. MIT license.
//
// IncidentLog — automatic deadlock forensics.
//
// When the monitor detects a cycle (or avoidance yields a thread, or a
// starvation is broken), it calls Capture() with the facts it already holds
// under its iteration lock: the signature, the RAG snapshot, the involved
// threads. The IncidentLog fills in the observability context it owns —
// the responsible thread's recent trace-ring events, histogram percentiles,
// active health alerts, a runtime-provided stats fragment — and writes one
// structured JSON bundle atomically (tmp + rename) into a bounded ring of
// files under DIMMUNIX_INCIDENT_DIR. The bundle is the postmortem an
// operator reads instead of reproducing the hang.
//
// Bundles are rate-limited (min_period) so an avoidance storm cannot turn
// the incident directory into a write amplifier, and the directory is
// bounded (max_files, oldest evicted) so it never grows without bound.
// With no directory configured the log is entirely inert: Capture() is a
// single branch, nothing else is touched.

#ifndef DIMMUNIX_OBS_INCIDENT_H_
#define DIMMUNIX_OBS_INCIDENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/recorder.h"
#include "src/rag/rag.h"

namespace dimmunix {
namespace obs {

class HealthEngine;

// What the capture site (the monitor) supplies; everything else the
// IncidentLog gathers itself at capture time.
struct IncidentContext {
  std::string kind;  // "deadlock" | "avoidance" | "starvation"
  std::int32_t signature_index = -1;
  std::uint64_t signature_hash = 0;  // persist::SignatureHash, 0 = unknown
  std::int32_t match_depth = 0;
  std::vector<std::string> signature_stacks;  // symbolized, "f0;f1;..."
  std::vector<ThreadId> threads;              // cycle / involved threads
  ThreadId victim = kInvalidThreadId;         // responsible local thread
  std::uint64_t victim_os_tid = 0;            // its ring identity (0 = none)
  RagSnapshot rag;
};

class IncidentLog {
 public:
  struct Options {
    std::string dir;  // empty = disabled
    int max_files = 16;
    std::chrono::milliseconds min_period{1000};
  };

  // `recorder` and `health` (either may be null) must outlive the log.
  IncidentLog(Options options, const Recorder* recorder, const HealthEngine* health);

  IncidentLog(const IncidentLog&) = delete;
  IncidentLog& operator=(const IncidentLog&) = delete;

  bool enabled() const { return !options_.dir.empty(); }
  const std::string& dir() const { return options_.dir; }

  // Extra JSON *object* appended under "runtime" — the Runtime wires a
  // provider rendering the IPC/arena/store stats this layer cannot see.
  void SetRuntimeJsonProvider(std::function<std::string()> provider);

  // Renders and atomically writes one bundle; evicts beyond max_files.
  // Returns the bundle path, or "" when disabled, rate-limited, or the
  // write failed. Thread-safe; called from the monitor thread in practice.
  std::string Capture(const IncidentContext& context);

  // Bundle filenames in `dir` (oldest first). Works cross-process: it is a
  // directory scan, so `dimctl incidents` sees bundles from any run.
  std::vector<std::string> List() const;

  struct Stats {
    std::uint64_t captured = 0;
    std::uint64_t suppressed = 0;  // rate-limited
    std::uint64_t errors = 0;      // write failures
  };
  Stats GetStats() const;

  static constexpr const char* kFilePrefix = "incident-";

 private:
  std::string RenderJson(const IncidentContext& context, std::uint64_t wall_ms) const;
  void EvictLocked();

  const Options options_;
  const Recorder* recorder_;
  const HealthEngine* health_;
  std::function<std::string()> runtime_json_;

  mutable std::mutex m_;
  std::uint64_t last_capture_ns_ = 0;
  std::uint64_t seq_ = 0;
  Stats stats_;
};

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_INCIDENT_H_
