// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Export plane for the observability subsystem: renders Recorder state as
//
//   * Chrome trace_event JSON (`dimctl trace dump`, shutdown dumps) —
//     loadable directly in Perfetto / chrome://tracing. One "X" (complete
//     span) event per ring record, real OS tids, thread_name metadata for
//     the runtime's own threads (monitor/bridge/store). Per-process dumps
//     share the steady-clock timebase, so `dimctl trace merge` produces one
//     coherent multi-process timeline (each process keeps its own pid row).
//
//   * Prometheus text format fragments (`dimctl metrics`) — counter and
//     histogram helpers emitting the classic cumulative-`le` exposition.
//
//   * plain-text percentile readouts (`dimctl histo <name>`).

#ifndef DIMMUNIX_OBS_EXPORT_H_
#define DIMMUNIX_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/histogram.h"
#include "src/obs/recorder.h"

namespace dimmunix {
namespace obs {

// Complete Chrome trace JSON document for this process's rings.
std::string ChromeTraceJson(const Recorder& recorder, std::uint64_t pid);

// ChromeTraceJson to a file. False (with *error set) on I/O failure.
bool WriteChromeTraceFile(const Recorder& recorder, std::uint64_t pid, const std::string& path,
                          std::string* error);

// Expands "%p" to the pid (shutdown dump paths shared by several processes).
std::string ExpandPidPattern(const std::string& path, std::uint64_t pid);

// Concatenates the traceEvents arrays of documents produced by
// ChromeTraceJson into one document at `output` (the multi-process merge
// behind `dimctl trace merge`). False (with *error set) if any input is
// unreadable or not a trace document.
bool MergeChromeTraceFiles(const std::vector<std::string>& inputs, const std::string& output,
                           std::string* error);

// --- Prometheus text format -------------------------------------------------

// One "# HELP/# TYPE counter" family with a single sample.
void AppendPromCounter(std::string* out, const std::string& name, const std::string& help,
                       std::uint64_t value);
// Same, TYPE gauge.
void AppendPromGauge(std::string* out, const std::string& name, const std::string& help,
                     std::uint64_t value);
// Cumulative-`le` histogram exposition (only non-empty buckets are emitted,
// plus the mandatory "+Inf" bucket, `_sum` and `_count`).
void AppendPromHistogram(std::string* out, const std::string& name, const std::string& help,
                         const HistogramSnapshot& snapshot);

// Labeled families (alert gauges, per-thread ring series): one HELP/TYPE
// header via AppendPromFamily, then any number of AppendPromSample rows.
// `labels` is the rendered label body without braces, e.g.
// `rule="match_churn"`; label values are escaped by PromLabelEscape.
void AppendPromFamily(std::string* out, const std::string& name, const std::string& help,
                      const char* type);
void AppendPromSample(std::string* out, const std::string& name, const std::string& labels,
                      std::uint64_t value);
std::string PromLabelEscape(const std::string& value);

// `dimctl histo <name>` payload: count/sum/mean + p50..p99.99 + bucket count.
std::string HistoReadout(const HistogramSnapshot& snapshot);

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_EXPORT_H_
