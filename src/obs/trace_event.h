// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The flight recorder's event vocabulary (src/obs/trace_ring.h stores these;
// src/obs/export.cc renders them as Chrome trace_event JSON).
//
// Every event is a *completed span*: the instrumentation site reads the
// clock when the interesting interval ends and records (end, duration) in
// one ring push — there are no open/close pairs to correlate, so a ring
// overwrite can never orphan half an event. An event is 24 bytes of payload
// (a 32-byte ring slot including the seqlock word):
//
//   end_ns  steady-clock nanoseconds at span end. steady_clock shares its
//           epoch across processes within one boot, so per-process dumps
//           merge onto one timeline (`dimctl trace merge`).
//   data    type-specific 64-bit payload (lock id, fold count, stall ns).
//   dur_ns  span length, saturated at ~4.29 s (uint32); every interval the
//           engine produces — acquire latencies, yields bounded by
//           Config::yield_timeout, epoch holds — fits with huge margin.
//   aux     type-specific 16-bit payload (signature index, saturated).
//   mode    AcquireMode ordinal where meaningful (0 exclusive, 1 shared).
//   type    TraceEventType.

#ifndef DIMMUNIX_OBS_TRACE_EVENT_H_
#define DIMMUNIX_OBS_TRACE_EVENT_H_

#include <chrono>
#include <cstdint>

#include "src/common/clock.h"

namespace dimmunix {
namespace obs {

enum class TraceEventType : std::uint8_t {
  kNone = 0,
  kAcquire = 1,        // request begin -> acquisition commit (incl. yields)
  kAcquireCancel = 2,  // request rolled back (trylock busy, timed-out lock)
  kYield = 3,          // park -> unpark; aux = signature index avoided
  kEpoch = 4,          // stop-the-stripes hold; data = entry stall ns
  kCoverSearch = 5,    // matcher cover search; aux = signature or kNoMatchAux
  kMonitorPass = 6,    // one monitor RunOnce; data = events drained
  kBridgeFold = 7,     // one IPC bridge tick; data = edges folded/retired
  kStoreFlush = 8,     // one journal append; aux = signature index
  kStoreCompact = 9,   // one history compaction; data = foreign sigs merged
  kFleetSync = 10,     // one dimmunixd gossip round; aux = peer index,
                       // data = records_in << 32 | records_out
  kIpcFlush = 11,      // one pending-log drain into the IPC arena;
                       // aux = arena rows written, data = ops drained
};
inline constexpr std::uint8_t kTraceEventTypeMax = 11;

// aux value of a kCoverSearch that found no instantiation.
inline constexpr std::uint16_t kNoMatchAux = 0xffff;

// Stable lowercase event name (Chrome-trace export, incident bundles).
inline const char* TraceEventTypeName(std::uint8_t type) {
  switch (static_cast<TraceEventType>(type)) {
    case TraceEventType::kAcquire:
      return "acquire";
    case TraceEventType::kAcquireCancel:
      return "acquire_cancel";
    case TraceEventType::kYield:
      return "yield";
    case TraceEventType::kEpoch:
      return "epoch";
    case TraceEventType::kCoverSearch:
      return "cover_search";
    case TraceEventType::kMonitorPass:
      return "monitor_pass";
    case TraceEventType::kBridgeFold:
      return "bridge_fold";
    case TraceEventType::kStoreFlush:
      return "store_flush";
    case TraceEventType::kStoreCompact:
      return "store_compact";
    case TraceEventType::kFleetSync:
      return "fleet_sync";
    case TraceEventType::kIpcFlush:
      return "ipc_flush";
    case TraceEventType::kNone:
      break;
  }
  return "unknown";
}

struct TraceEvent {
  std::uint64_t end_ns = 0;
  std::uint64_t data = 0;
  std::uint32_t dur_ns = 0;
  std::uint16_t aux = 0;
  std::uint8_t mode = 0;
  std::uint8_t type = 0;
};

// Steady-clock nanoseconds — the ring timebase.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now().time_since_epoch()).count());
}

inline std::uint32_t SaturateDurNs(std::uint64_t dur_ns) {
  return dur_ns > 0xffffffffULL ? 0xffffffffU : static_cast<std::uint32_t>(dur_ns);
}

inline std::uint16_t SaturateAux(std::int64_t value) {
  if (value < 0) {
    return kNoMatchAux;
  }
  return value >= 0xffff ? 0xfffe : static_cast<std::uint16_t>(value);
}

// Binary layout inside a ring slot: three 64-bit words.
inline void PackEvent(const TraceEvent& e, std::uint64_t* w0, std::uint64_t* w1,
                      std::uint64_t* w2) {
  *w0 = e.end_ns;
  *w1 = (static_cast<std::uint64_t>(e.type) << 56) | (static_cast<std::uint64_t>(e.mode) << 48) |
        (static_cast<std::uint64_t>(e.aux) << 32) | e.dur_ns;
  *w2 = e.data;
}

inline TraceEvent UnpackEvent(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2) {
  TraceEvent e;
  e.end_ns = w0;
  e.type = static_cast<std::uint8_t>(w1 >> 56);
  e.mode = static_cast<std::uint8_t>(w1 >> 48);
  e.aux = static_cast<std::uint16_t>(w1 >> 32);
  e.dur_ns = static_cast<std::uint32_t>(w1);
  e.data = w2;
  return e;
}

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_TRACE_EVENT_H_
