// Copyright (c) dimmunix-cpp authors. MIT license.
//
// HealthEngine — the self-diagnosis layer on top of the raw counters.
//
// PR 6 gave the system signals (trace rings, histograms, Prometheus
// counters); nothing evaluated them. The HealthEngine closes that gap: a
// periodic evaluator (the Runtime owns the thread and ticks it on the
// monitor cadence) receives a flat HealthSample of counter readings,
// computes rates of change against the previous sample, and drives a fixed
// set of typed alert rules through a hysteresis state machine:
//
//   inactive --breach--> firing --fire_ticks breaches--> active
//   firing --clear--> inactive                (one-tick flap, suppressed)
//   active --resolve_ticks clears--> resolved (latched: "was bad, recovered")
//   resolved --breach--> firing
//
// The rules cover the failure modes the earlier PRs left as open alerting
// items: cover-revalidation churn (`match_fast_retries`, carried from
// PR 8), epoch-stall storms, IPC pending-op backlog and flush latency,
// arena slot/edge exhaustion, trace-ring drops, HistoryStore queue depth,
// and resync staleness. Thresholds come from Config (DIMMUNIX_HEALTH_*).
//
// Layering: this file sees only plain numbers. The Runtime assembles the
// HealthSample from the engine/bridge/store snapshots it owns; tests drive
// Tick() directly with synthetic samples.

#ifndef DIMMUNIX_OBS_HEALTH_H_
#define DIMMUNIX_OBS_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dimmunix {
namespace obs {

enum class AlertState : std::uint8_t { kInactive, kFiring, kActive, kResolved };

const char* AlertStateName(AlertState state);

// One evaluator input: a consistent-enough reading of every counter the
// rules consume, taken at `now_ns`. All plain numbers — no engine types.
struct HealthSample {
  std::uint64_t now_ns = 0;  // steady-clock nanoseconds

  // Avoidance engine (EngineStatsSnapshot).
  std::uint64_t requests = 0;
  std::uint64_t match_fast_retries = 0;
  std::uint64_t epoch_stall_ns = 0;

  // IPC bridge + arena mirror (IpcStatus / ParticipantInfo). All ignored
  // while `ipc_running` is false.
  bool ipc_running = false;
  std::uint64_t ipc_pending_ops = 0;
  std::uint64_t ipc_flush_p99_ns = 0;  // cumulative histogram percentile
  std::uint64_t arena_participants_used = 0;
  std::uint64_t arena_participants_cap = 0;
  std::uint64_t arena_edges_used = 0;  // this process's published rows
  std::uint64_t arena_edges_cap = 0;

  // Flight recorder (sum over all per-thread rings).
  std::uint64_t ring_dropped = 0;

  // HistoryStore. Ignored while `store_running` is false; the resync rule
  // additionally requires resync_period_ms > 0 and a non-negative age.
  bool store_running = false;
  std::uint64_t store_queued = 0;
  std::uint64_t resync_period_ms = 0;
  std::int64_t last_resync_age_ms = -1;
};

// Rule thresholds; Config carries these (health_* fields) and the Runtime
// copies them over. Defaults here match Config's defaults.
struct HealthThresholds {
  double retry_ratio = 0.5;           // fast-path retries per request
  double epoch_stall_pct = 5.0;       // % of wall time stalled entering epochs
  std::uint64_t ipc_backlog = 256;    // pending ops (cap is 512)
  std::uint64_t ipc_flush_p99_us = 10000;  // pending-log drain p99
  double arena_pct = 80.0;            // slot or edge-row utilization %
  double ring_drops_per_s = 100.0;    // trace events lost per second
  std::uint64_t store_queue = 64;     // store writer queue depth
  double resync_stale_x = 3.0;        // last resync age / resync period
  int fire_ticks = 2;                 // breaches before firing -> active
  int resolve_ticks = 2;              // clears before active -> resolved
};

struct AlertSnapshot {
  std::string rule;   // stable machine identifier ("match_churn", ...)
  std::string signal; // human description of what the value measures
  AlertState state = AlertState::kInactive;
  double value = 0.0;      // last evaluated value (0 when never evaluable)
  double threshold = 0.0;
  std::uint64_t fired_count = 0;  // transitions into kFiring
  std::uint64_t since_ns = 0;     // steady-clock time the state was entered
};

class HealthEngine {
 public:
  static constexpr int kRuleCount = 8;

  explicit HealthEngine(HealthThresholds thresholds);

  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  // One evaluation pass. Rate rules need two samples: the first call only
  // primes the deltas. Thread-safe (the evaluator thread ticks; the control
  // plane snapshots concurrently).
  void Tick(const HealthSample& sample);

  // Every rule, including inactive ones (so `dimctl alerts` documents the
  // full rule set with live values and thresholds).
  std::vector<AlertSnapshot> Snapshot() const;

  struct Summary {
    int firing = 0;
    int active = 0;    // state == kActive (the "confirmed" count)
    int resolved = 0;
    int total = kRuleCount;
    std::uint64_t ticks = 0;
    std::uint64_t fired_total = 0;
    // firing + active: what `status alerts=<active>/<total>` reports.
    int raised() const { return firing + active; }
  };
  Summary GetSummary() const;

 private:
  struct RuleState {
    AlertState state = AlertState::kInactive;
    int breach_streak = 0;
    int clear_streak = 0;
    double value = 0.0;
    std::uint64_t fired = 0;
    std::uint64_t since_ns = 0;
  };

  const HealthThresholds thresholds_;
  mutable std::mutex m_;
  HealthSample prev_;
  bool have_prev_ = false;
  std::uint64_t ticks_ = 0;
  RuleState rules_[kRuleCount];
};

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_HEALTH_H_
