// Copyright (c) dimmunix-cpp authors. MIT license.
//
// TraceRing — the per-thread flight-recorder ring.
//
// One ring has exactly one writer (the thread it belongs to) and any number
// of concurrent readers (`dimctl trace dump`, the shutdown dump). The writer
// must never block, never allocate, and never take a lock: a push is three
// relaxed payload stores bracketed by a per-slot seqlock, ~a cache line of
// work. When the ring is full it overwrites its oldest slot — flight
// recorders keep the most recent history, and the `written`/`dropped`
// counters tell the reader exactly how much scrolled off.
//
// Concurrency: the classic seqlock, expressed entirely with atomics so TSan
// sees every access (the obs_ tests run under -fsanitize=thread in CI).
// Writer per slot: bump seq to odd (relaxed), release fence, payload stores
// (relaxed), seq to even (release). Reader per slot: seq (acquire), payload
// (relaxed), acquire fence, seq re-read — a changed or odd seq means the
// writer lapped us mid-read and the slot is retried, then skipped. A torn
// event is therefore never *returned*, only (rarely) missed, which is the
// right trade for a diagnostic surface.

#ifndef DIMMUNIX_OBS_TRACE_RING_H_
#define DIMMUNIX_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/trace_event.h"

namespace dimmunix {
namespace obs {

class TraceRing {
 public:
  // `capacity` is rounded up to a power of two (minimum 8 slots).
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Writer side — owner thread only.
  void Push(const TraceEvent& event) {
    const std::uint64_t n = written_.load(std::memory_order_relaxed);
    Slot& slot = slots_[n & mask_];
    std::uint64_t w0 = 0;
    std::uint64_t w1 = 0;
    std::uint64_t w2 = 0;
    PackEvent(event, &w0, &w1, &w2);
    const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    slot.w0.store(w0, std::memory_order_relaxed);
    slot.w1.store(w1, std::memory_order_relaxed);
    slot.w2.store(w2, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
    written_.store(n + 1, std::memory_order_release);
  }

  // Total events ever pushed.
  std::uint64_t written() const { return written_.load(std::memory_order_acquire); }

  // Events that scrolled off the ring (overwritten by newer ones).
  std::uint64_t dropped() const {
    const std::uint64_t n = written();
    const std::size_t cap = capacity();
    return n > cap ? n - cap : 0;
  }

  // Reader side — any thread, concurrent with the writer. Returns every
  // currently stable event; slots the writer is lapping through are skipped.
  // The walk starts at the oldest slot (the one the next push overwrites),
  // so a quiescent ring snapshots in exact push order.
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> out;
    const std::size_t cap = capacity();
    const std::size_t first = static_cast<std::size_t>(written()) & mask_;
    out.reserve(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      const Slot& slot = slots_[(first + i) & mask_];
      for (int attempt = 0; attempt < 3; ++attempt) {
        const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
        if (seq1 == 0) {
          break;  // never written
        }
        if (seq1 & 1) {
          continue;  // mid-write; retry
        }
        const std::uint64_t w0 = slot.w0.load(std::memory_order_relaxed);
        const std::uint64_t w1 = slot.w1.load(std::memory_order_relaxed);
        const std::uint64_t w2 = slot.w2.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
        if (seq1 == seq2) {
          out.push_back(UnpackEvent(w0, w1, w2));
          break;
        }
      }
    }
    return out;
  }

 private:
  // 32 bytes: the seqlock word plus the three payload words of PackEvent.
  struct alignas(32) Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = never written; odd = in progress
    std::atomic<std::uint64_t> w0{0};
    std::atomic<std::uint64_t> w1{0};
    std::atomic<std::uint64_t> w2{0};
  };
  static_assert(sizeof(Slot) == 32, "trace ring slots are fixed 32-byte records");

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  // Writer-updated cursor, padded so readers polling it never contend with
  // the slot the writer is filling.
  alignas(64) std::atomic<std::uint64_t> written_{0};
};

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_TRACE_RING_H_
