// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/obs/recorder.h"

#include <sys/syscall.h>
#include <unistd.h>

namespace dimmunix {
namespace obs {
namespace {

std::uint64_t OsThreadId() {
  return static_cast<std::uint64_t>(::syscall(SYS_gettid));
}

std::uint64_t NextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread ring cache. Keyed by recorder id, not pointer: a recorder id is
// never reused, so a stale cache entry from a destroyed recorder can never
// be mistaken for the current one (tests construct many Recorders).
struct TlsRingCache {
  std::uint64_t recorder_id = 0;
  TraceRing* ring = nullptr;
};
thread_local TlsRingCache tls_ring_cache;

}  // namespace

const char* HistoName(HistoKind kind) {
  switch (kind) {
    case HistoKind::kAcquireLatency:
      return "acquire_latency_ns";
    case HistoKind::kYieldDuration:
      return "yield_duration_ns";
    case HistoKind::kEpochHold:
      return "epoch_hold_ns";
    case HistoKind::kMatchDuration:
      return "match_duration_ns";
    case HistoKind::kIpcFlush:
      return "ipc_flush_ns";
  }
  return "unknown";
}

int HistoKindFromName(const std::string& name) {
  for (int k = 0; k < kHistoKindCount; ++k) {
    if (name == HistoName(static_cast<HistoKind>(k))) {
      return k;
    }
  }
  return -1;
}

Recorder::Recorder(const Options& options)
    : id_(NextRecorderId()),
      metrics_on_(options.metrics_enabled),
      ring_capacity_(options.ring_capacity < 8 ? 8 : options.ring_capacity),
      trace_on_(options.trace_enabled) {}

Recorder::~Recorder() = default;

Recorder::RingEntry* Recorder::RegisterThread() {
  const std::uint64_t tid = OsThreadId();
  std::lock_guard<SpinLock> guard(rings_m_);
  // A thread re-registering (cache evicted by another recorder) reuses its
  // existing ring — one ring per (recorder, thread), always.
  for (auto& entry : rings_) {
    if (entry->tid == tid) {
      return entry.get();
    }
  }
  rings_.push_back(std::make_unique<RingEntry>(ring_capacity_));
  rings_.back()->tid = tid;
  return rings_.back().get();
}

TraceRing& Recorder::ThreadRing() {
  if (tls_ring_cache.recorder_id != id_ || tls_ring_cache.ring == nullptr) {
    RingEntry* entry = RegisterThread();
    tls_ring_cache.recorder_id = id_;
    tls_ring_cache.ring = &entry->ring;
  }
  return *tls_ring_cache.ring;
}

void Recorder::NameThisThread(const char* name) {
  RingEntry* entry = RegisterThread();
  {
    std::lock_guard<SpinLock> guard(rings_m_);
    entry->name = name;
  }
  tls_ring_cache.recorder_id = id_;
  tls_ring_cache.ring = &entry->ring;
}

std::vector<Recorder::RingDump> Recorder::SnapshotRings() const {
  // Copy the stable entry pointers under the lock, read the rings outside
  // it: rings are append-only and seqlock-protected, so the expensive part
  // never blocks a writer registering a new thread.
  std::vector<std::pair<RingEntry*, std::string>> entries;
  {
    std::lock_guard<SpinLock> guard(rings_m_);
    entries.reserve(rings_.size());
    for (const auto& entry : rings_) {
      entries.emplace_back(entry.get(), entry->name);
    }
  }
  std::vector<RingDump> dumps;
  dumps.reserve(entries.size());
  for (const auto& [entry, name] : entries) {
    RingDump dump;
    dump.tid = entry->tid;
    dump.name = name;
    dump.events = entry->ring.Snapshot();
    dump.written = entry->ring.written();
    dump.dropped = entry->ring.dropped();
    dumps.push_back(std::move(dump));
  }
  return dumps;
}

std::vector<Recorder::RingTotals> Recorder::SnapshotRingTotals() const {
  std::vector<RingTotals> totals;
  std::lock_guard<SpinLock> guard(rings_m_);
  totals.reserve(rings_.size());
  for (const auto& entry : rings_) {
    RingTotals t;
    t.tid = entry->tid;
    t.name = entry->name;
    t.written = entry->ring.written();
    t.dropped = entry->ring.dropped();
    totals.push_back(std::move(t));
  }
  return totals;
}

}  // namespace obs
}  // namespace dimmunix
