// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/obs/incident.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/obs/health.h"
#include "src/obs/trace_event.h"

namespace dimmunix {
namespace obs {
namespace {

// Recent-history bound per bundle: enough ring context to see what the
// victim was doing, small enough that a bundle stays a quick read.
constexpr std::size_t kMaxTraceEvents = 64;

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string DoubleJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::uint64_t WallMs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

void AppendRagJson(std::string* out, const RagSnapshot& rag) {
  char buf[160];
  *out += "{\"lock_count\":" + std::to_string(rag.lock_count) +
          ",\"yield_edge_count\":" + std::to_string(rag.yield_edge_count) + ",\"threads\":[";
  bool first = true;
  for (const RagThreadInfo& t : rag.threads) {
    if (!first) {
      *out += ',';
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%d,\"foreign\":%s,\"waiting\":%s,\"yield_edges\":%zu", t.id,
                  t.foreign ? "true" : "false", t.waiting ? "true" : "false", t.yield_edges);
    *out += buf;
    if (t.waiting) {
      std::snprintf(buf, sizeof(buf), ",\"wait_lock\":\"0x%" PRIx64 "\",\"wait_mode\":\"%c\"",
                    t.wait_lock, AcquireModeTag(t.wait_mode));
      *out += buf;
    }
    *out += ",\"held\":[";
    bool first_held = true;
    for (const RagThreadInfo::HeldLock& h : t.held) {
      if (!first_held) {
        *out += ',';
      }
      first_held = false;
      std::snprintf(buf, sizeof(buf), "{\"lock\":\"0x%" PRIx64 "\",\"mode\":\"%c\"}", h.lock,
                    AcquireModeTag(h.mode));
      *out += buf;
    }
    *out += "]}";
  }
  *out += "]}";
}

void AppendTraceJson(std::string* out, const Recorder* recorder, std::uint64_t os_tid) {
  if (recorder == nullptr || os_tid == 0) {
    *out += "null";
    return;
  }
  for (const Recorder::RingDump& ring : recorder->SnapshotRings()) {
    if (ring.tid != os_tid) {
      continue;
    }
    *out += "{\"os_tid\":" + std::to_string(ring.tid) + ",\"written\":" +
            std::to_string(ring.written) + ",\"dropped\":" + std::to_string(ring.dropped) +
            ",\"events\":[";
    const std::size_t begin =
        ring.events.size() > kMaxTraceEvents ? ring.events.size() - kMaxTraceEvents : 0;
    char buf[192];
    for (std::size_t i = begin; i < ring.events.size(); ++i) {
      const TraceEvent& e = ring.events[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"type\":\"%s\",\"end_ns\":%" PRIu64 ",\"dur_ns\":%u,\"aux\":%u,"
                    "\"mode\":\"%c\",\"data\":\"0x%" PRIx64 "\"}",
                    i == begin ? "" : ",", TraceEventTypeName(e.type), e.end_ns, e.dur_ns, e.aux,
                    e.mode == 1 ? 'S' : 'X', e.data);
      *out += buf;
    }
    *out += "]}";
    return;
  }
  *out += "null";
}

void AppendHistogramsJson(std::string* out, const Recorder* recorder) {
  *out += '[';
  if (recorder != nullptr) {
    for (int k = 0; k < kHistoKindCount; ++k) {
      const HistogramSnapshot snap = recorder->histogram(static_cast<HistoKind>(k)).Snapshot();
      if (k != 0) {
        *out += ',';
      }
      *out += std::string("{\"name\":\"") + HistoName(static_cast<HistoKind>(k)) +
              "\",\"count\":" + std::to_string(snap.count) +
              ",\"mean_ns\":" + std::to_string(snap.Mean()) +
              ",\"p50_ns\":" + std::to_string(snap.Percentile(50.0)) +
              ",\"p99_ns\":" + std::to_string(snap.Percentile(99.0)) + "}";
    }
  }
  *out += ']';
}

void AppendAlertsJson(std::string* out, const HealthEngine* health) {
  *out += '[';
  if (health != nullptr) {
    bool first = true;
    for (const AlertSnapshot& a : health->Snapshot()) {
      if (a.state == AlertState::kInactive) {
        continue;
      }
      if (!first) {
        *out += ',';
      }
      first = false;
      *out += "{\"rule\":\"" + JsonEscape(a.rule) + "\",\"state\":\"" + AlertStateName(a.state) +
              "\",\"value\":" + DoubleJson(a.value) +
              ",\"threshold\":" + DoubleJson(a.threshold) + "}";
    }
  }
  *out += ']';
}

}  // namespace

IncidentLog::IncidentLog(Options options, const Recorder* recorder, const HealthEngine* health)
    : options_(std::move(options)), recorder_(recorder), health_(health) {}

void IncidentLog::SetRuntimeJsonProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> guard(m_);
  runtime_json_ = std::move(provider);
}

std::string IncidentLog::RenderJson(const IncidentContext& context, std::uint64_t wall_ms) const {
  std::string out = "{\n";
  out += "\"schema\":\"dimmunix-incident-v1\",\n";
  out += "\"captured_ms\":" + std::to_string(wall_ms) + ",\n";
  out += "\"pid\":" + std::to_string(static_cast<std::uint64_t>(::getpid())) + ",\n";
  out += "\"kind\":\"" + JsonEscape(context.kind) + "\",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", context.signature_hash);
  out += "\"signature\":{\"index\":" + std::to_string(context.signature_index) +
         ",\"hash\":" + buf + ",\"match_depth\":" + std::to_string(context.match_depth) +
         ",\"stacks\":[";
  for (std::size_t i = 0; i < context.signature_stacks.size(); ++i) {
    out += (i == 0 ? "\"" : ",\"") + JsonEscape(context.signature_stacks[i]) + "\"";
  }
  out += "]},\n";
  out += "\"threads\":[";
  for (std::size_t i = 0; i < context.threads.size(); ++i) {
    out += (i == 0 ? "" : ",") + std::to_string(context.threads[i]);
  }
  out += "],\n";
  out += "\"victim\":{\"thread\":" + std::to_string(context.victim) +
         ",\"os_tid\":" + std::to_string(context.victim_os_tid) + "},\n";
  out += "\"rag\":";
  AppendRagJson(&out, context.rag);
  out += ",\n\"trace\":";
  AppendTraceJson(&out, recorder_, context.victim_os_tid);
  out += ",\n\"histograms\":";
  AppendHistogramsJson(&out, recorder_);
  out += ",\n\"alerts\":";
  AppendAlertsJson(&out, health_);
  out += ",\n\"runtime\":";
  const std::string fragment = runtime_json_ ? runtime_json_() : std::string();
  out += fragment.empty() ? "{}" : fragment;
  out += "\n}\n";
  return out;
}

std::string IncidentLog::Capture(const IncidentContext& context) {
  if (!enabled()) {
    return "";
  }
  std::uint64_t wall_ms = 0;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> guard(m_);
    const std::uint64_t now_ns = NowNs();
    const std::uint64_t min_ns =
        static_cast<std::uint64_t>(options_.min_period.count()) * 1000000ULL;
    if (last_capture_ns_ != 0 && now_ns - last_capture_ns_ < min_ns) {
      ++stats_.suppressed;
      return "";
    }
    last_capture_ns_ = now_ns;
    seq = ++seq_;
    wall_ms = WallMs();
  }
  // Render outside the lock: SnapshotRings / the runtime provider are the
  // expensive parts, and List()/GetStats() must never wait on them.
  const std::string body = RenderJson(context, wall_ms);
  char name[96];
  std::snprintf(name, sizeof(name), "%s%020" PRIu64 "-%04" PRIu64 ".json", kFilePrefix, wall_ms,
                seq);
  const std::string path = options_.dir + "/" + name;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    file << body;
    file.flush();
    if (!file) {
      std::lock_guard<std::mutex> guard(m_);
      ++stats_.errors;
      return "";
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    std::lock_guard<std::mutex> guard(m_);
    ++stats_.errors;
    return "";
  }
  std::lock_guard<std::mutex> guard(m_);
  ++stats_.captured;
  EvictLocked();
  return path;
}

std::vector<std::string> IncidentLog::List() const {
  std::vector<std::string> names;
  if (!enabled()) {
    return names;
  }
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return names;
  }
  const std::string prefix = kFilePrefix;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > prefix.size() + 5 && name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  // Filenames embed zero-padded capture-time ms + sequence, so the
  // lexicographic order is the chronological order.
  std::sort(names.begin(), names.end());
  return names;
}

void IncidentLog::EvictLocked() {
  if (options_.max_files <= 0) {
    return;
  }
  std::vector<std::string> names = List();
  while (names.size() > static_cast<std::size_t>(options_.max_files)) {
    std::remove((options_.dir + "/" + names.front()).c_str());
    names.erase(names.begin());
  }
}

IncidentLog::Stats IncidentLog::GetStats() const {
  std::lock_guard<std::mutex> guard(m_);
  return stats_;
}

}  // namespace obs
}  // namespace dimmunix
