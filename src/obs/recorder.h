// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Recorder — the process-wide observability hub (one per Runtime).
//
// It owns (a) the per-thread flight-recorder trace rings, handed out lazily
// on a thread's first event, and (b) the always-on latency histograms
// (acquire latency, yield duration, epoch hold). Instrumentation sites in
// the engine/monitor/bridge/store call the inline entry points below:
//
//   Span(...)     push one completed span on the calling thread's ring.
//                 One relaxed flag load + branch when tracing is off —
//                 "DIMMUNIX_TRACE unset must be free".
//   Latency(...)  record one sample into a histogram (wait-free, sharded).
//   timing()      should the caller bother reading the clock at all?
//
// Registry locks are raw spin locks (src/common/spin_lock.h), never pthread
// mutexes: under LD_PRELOAD the instrumentation sites run inside interposed
// lock operations, and a pthread mutex here would recurse into the very
// engine paths being traced.

#ifndef DIMMUNIX_OBS_RECORDER_H_
#define DIMMUNIX_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/spin_lock.h"
#include "src/obs/histogram.h"
#include "src/obs/trace_event.h"
#include "src/obs/trace_ring.h"

namespace dimmunix {
namespace obs {

// The always-on latency surfaces. Names are the `dimctl histo <name>` /
// Prometheus identifiers (see HistoName / HistoKindFromName).
enum class HistoKind {
  kAcquireLatency = 0,  // request begin -> acquisition commit
  kYieldDuration = 1,   // park -> unpark
  kEpochHold = 2,       // stop-the-stripes guard held
  kMatchDuration = 3,   // incremental (fast-path) cover scan
  kIpcFlush = 4,        // one pending-log drain into the IPC arena
};
inline constexpr int kHistoKindCount = 5;

const char* HistoName(HistoKind kind);
// -1 if `name` is not a histogram name.
int HistoKindFromName(const std::string& name);

class Recorder {
 public:
  struct Options {
    bool trace_enabled = false;   // arm the rings at construction
    std::size_t ring_capacity = 8192;  // events per thread (rounded to pow2)
    bool metrics_enabled = true;  // latency histograms
  };

  explicit Recorder(const Options& options);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // --- Hot-path entry points ------------------------------------------------

  bool tracing() const { return trace_on_.load(std::memory_order_relaxed); }
  bool metrics() const { return metrics_on_; }
  // True when an instrumentation site should read the clock at all.
  bool timing() const { return metrics_on_ || tracing(); }

  // Records one completed span on the calling thread's ring. No-op (one
  // relaxed load + branch) while tracing is off.
  void Span(TraceEventType type, std::uint64_t end_ns, std::uint64_t dur_ns,
            std::uint16_t aux = 0, std::uint8_t mode = 0, std::uint64_t data = 0) {
    if (!tracing()) {
      return;
    }
    TraceEvent event;
    event.end_ns = end_ns;
    event.data = data;
    event.dur_ns = SaturateDurNs(dur_ns);
    event.aux = aux;
    event.mode = mode;
    event.type = static_cast<std::uint8_t>(type);
    ThreadRing().Push(event);
  }

  // Records one latency sample. No-op when metrics are disabled.
  void Latency(HistoKind kind, std::uint64_t ns) {
    if (!metrics_on_) {
      return;
    }
    histograms_[static_cast<int>(kind)].Record(ns);
  }

  // --- Control plane --------------------------------------------------------

  void StartTracing() { trace_on_.store(true, std::memory_order_relaxed); }
  void StopTracing() { trace_on_.store(false, std::memory_order_relaxed); }

  // Labels the calling thread's ring for the trace export (thread_name
  // metadata in Perfetto). Registers the ring if the thread has none yet.
  void NameThisThread(const char* name);

  const Histogram& histogram(HistoKind kind) const {
    return histograms_[static_cast<int>(kind)];
  }

  struct RingDump {
    std::uint64_t tid = 0;     // OS thread id at registration time
    std::string name;          // empty unless NameThisThread was called
    std::uint64_t written = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };
  // Stable reader-side snapshot of every ring (including rings of threads
  // that have since exited — the flight recorder keeps their history).
  std::vector<RingDump> SnapshotRings() const;

  // written/dropped accounting only, without copying event payloads — what
  // the metrics exposition and the ring-drop health rule read every tick.
  struct RingTotals {
    std::uint64_t tid = 0;
    std::string name;
    std::uint64_t written = 0;
    std::uint64_t dropped = 0;
  };
  std::vector<RingTotals> SnapshotRingTotals() const;

 private:
  struct RingEntry {
    std::uint64_t tid = 0;
    std::string name;  // guarded by rings_m_
    TraceRing ring;
    explicit RingEntry(std::size_t capacity) : ring(capacity) {}
  };

  TraceRing& ThreadRing();
  RingEntry* RegisterThread();

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  const bool metrics_on_;
  const std::size_t ring_capacity_;
  std::atomic<bool> trace_on_;

  mutable SpinLock rings_m_;  // guards rings_ growth and entry names
  std::vector<std::unique_ptr<RingEntry>> rings_;

  Histogram histograms_[kHistoKindCount];
};

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_RECORDER_H_
