// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dimmunix {
namespace obs {
namespace {

// Type-specific args object. The data/aux words mean different things per
// event type (src/obs/trace_event.h); naming them here keeps the Perfetto
// side self-describing.
std::string EventArgs(const TraceEvent& e) {
  char buf[128];
  switch (static_cast<TraceEventType>(e.type)) {
    case TraceEventType::kAcquire:
    case TraceEventType::kAcquireCancel:
      std::snprintf(buf, sizeof(buf), "{\"lock\":\"0x%" PRIx64 "\",\"mode\":\"%s\"}", e.data,
                    e.mode == 0 ? "X" : "S");
      break;
    case TraceEventType::kYield:
      std::snprintf(buf, sizeof(buf),
                    "{\"signature\":%u,\"lock\":\"0x%" PRIx64 "\",\"mode\":\"%s\"}", e.aux,
                    e.data, e.mode == 0 ? "X" : "S");
      break;
    case TraceEventType::kEpoch:
      std::snprintf(buf, sizeof(buf), "{\"stall_ns\":%" PRIu64 "}", e.data);
      break;
    case TraceEventType::kCoverSearch:
      if (e.aux == kNoMatchAux) {
        std::snprintf(buf, sizeof(buf), "{\"matched\":false}");
      } else {
        std::snprintf(buf, sizeof(buf), "{\"matched\":true,\"signature\":%u}", e.aux);
      }
      break;
    case TraceEventType::kMonitorPass:
      std::snprintf(buf, sizeof(buf), "{\"events_drained\":%" PRIu64 "}", e.data);
      break;
    case TraceEventType::kBridgeFold:
      std::snprintf(buf, sizeof(buf), "{\"edges_folded\":%" PRIu64 "}", e.data);
      break;
    case TraceEventType::kStoreFlush:
      std::snprintf(buf, sizeof(buf), "{\"signature\":%u}", e.aux);
      break;
    case TraceEventType::kStoreCompact:
      std::snprintf(buf, sizeof(buf), "{\"foreign_merged\":%" PRIu64 "}", e.data);
      break;
    case TraceEventType::kFleetSync:
      std::snprintf(buf, sizeof(buf), "{\"peer\":%u,\"records_in\":%u,\"records_out\":%u}",
                    e.aux, static_cast<std::uint32_t>(e.data >> 32),
                    static_cast<std::uint32_t>(e.data));
      break;
    case TraceEventType::kIpcFlush:
      std::snprintf(buf, sizeof(buf), "{\"ops_drained\":%" PRIu64 ",\"rows_written\":%u}", e.data,
                    e.aux);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "{}");
      break;
  }
  return buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const Recorder& recorder, std::uint64_t pid) {
  const std::vector<Recorder::RingDump> rings = recorder.SnapshotRings();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char line[256];
  // Process metadata row, so merged multi-process traces label their rows.
  std::snprintf(line, sizeof(line),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu64
                ",\"args\":{\"name\":\"dimmunix:%" PRIu64 "\"}}",
                pid, pid);
  out += line;
  first = false;
  for (const Recorder::RingDump& ring : rings) {
    if (!ring.name.empty()) {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
                    ",\"args\":{\"name\":\"%s\"}}",
                    pid, ring.tid, JsonEscape(ring.name).c_str());
      out += ",\n";
      out += line;
    }
    if (ring.dropped > 0) {
      // Surface ring overflow in the trace itself — a silent gap would read
      // as "nothing happened" exactly when the system was busiest.
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"ring_dropped\",\"ph\":\"C\",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
                    ",\"ts\":0,\"args\":{\"events\":%" PRIu64 "}}",
                    pid, ring.tid, ring.dropped);
      out += ",\n";
      out += line;
    }
    for (const TraceEvent& e : ring.events) {
      const std::uint64_t begin_ns = e.end_ns - e.dur_ns;
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"dimmunix\",\"ph\":\"X\",\"pid\":%" PRIu64
                    ",\"tid\":%" PRIu64 ",\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
                    TraceEventTypeName(e.type), pid, ring.tid, static_cast<double>(begin_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0, EventArgs(e).c_str());
      if (!first) {
        out += ",\n";
      }
      out += line;
      first = false;
    }
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTraceFile(const Recorder& recorder, std::uint64_t pid, const std::string& path,
                          std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  file << ChromeTraceJson(recorder, pid);
  file.flush();
  if (!file) {
    if (error != nullptr) {
      *error = "write failed for " + path;
    }
    return false;
  }
  return true;
}

std::string ExpandPidPattern(const std::string& path, std::uint64_t pid) {
  std::string out = path;
  const std::size_t at = out.find("%p");
  if (at != std::string::npos) {
    out.replace(at, 2, std::to_string(pid));
  }
  return out;
}

bool MergeChromeTraceFiles(const std::vector<std::string>& inputs, const std::string& output,
                           std::string* error) {
  std::string merged = "{\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& input : inputs) {
    std::ifstream file(input, std::ios::binary);
    if (!file) {
      if (error != nullptr) {
        *error = "cannot read " + input;
      }
      return false;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    const std::string text = buf.str();
    const std::size_t key = text.find("\"traceEvents\"");
    const std::size_t open = key == std::string::npos ? std::string::npos : text.find('[', key);
    const std::size_t close = text.rfind(']');
    if (open == std::string::npos || close == std::string::npos || close <= open) {
      if (error != nullptr) {
        *error = input + " is not a trace document";
      }
      return false;
    }
    std::string body = text.substr(open + 1, close - open - 1);
    // Trim whitespace; an all-metadata/empty array contributes nothing.
    const std::size_t begin = body.find_first_not_of(" \t\r\n");
    const std::size_t end = body.find_last_not_of(" \t\r\n");
    if (begin == std::string::npos) {
      continue;
    }
    body = body.substr(begin, end - begin + 1);
    if (!first) {
      merged += ",\n";
    }
    merged += body;
    first = false;
  }
  merged += "\n]}\n";
  std::ofstream out(output, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + output;
    }
    return false;
  }
  out << merged;
  out.flush();
  if (!out) {
    if (error != nullptr) {
      *error = "write failed for " + output;
    }
    return false;
  }
  return true;
}

void AppendPromCounter(std::string* out, const std::string& name, const std::string& help,
                       std::uint64_t value) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " counter\n";
  *out += name + " " + std::to_string(value) + "\n";
}

void AppendPromGauge(std::string* out, const std::string& name, const std::string& help,
                     std::uint64_t value) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " gauge\n";
  *out += name + " " + std::to_string(value) + "\n";
}

void AppendPromFamily(std::string* out, const std::string& name, const std::string& help,
                      const char* type) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

void AppendPromSample(std::string* out, const std::string& name, const std::string& labels,
                      std::uint64_t value) {
  *out += name + "{" + labels + "} " + std::to_string(value) + "\n";
}

std::string PromLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendPromHistogram(std::string* out, const std::string& name, const std::string& help,
                         const HistogramSnapshot& snapshot) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < snapshot.buckets.size(); ++b) {
    if (snapshot.buckets[b] == 0) {
      continue;  // the log-linear layout has ~1000 buckets; ship only live ones
    }
    cumulative += snapshot.buckets[b];
    *out += name + "_bucket{le=\"" + std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snapshot.count) + "\n";
  *out += name + "_sum " + std::to_string(snapshot.sum) + "\n";
  *out += name + "_count " + std::to_string(snapshot.count) + "\n";
}

std::string HistoReadout(const HistogramSnapshot& snapshot) {
  std::ostringstream out;
  out << "count=" << snapshot.count << "\n";
  out << "sum_ns=" << snapshot.sum << "\n";
  out << "mean_ns=" << snapshot.Mean() << "\n";
  out << "p50_ns=" << snapshot.Percentile(50.0) << "\n";
  out << "p90_ns=" << snapshot.Percentile(90.0) << "\n";
  out << "p99_ns=" << snapshot.Percentile(99.0) << "\n";
  out << "p999_ns=" << snapshot.Percentile(99.9) << "\n";
  out << "p9999_ns=" << snapshot.Percentile(99.99) << "\n";
  return out.str();
}

}  // namespace obs
}  // namespace dimmunix
