// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Log-linear (HDR-style) latency histogram, sharded like
// src/common/sharded_counter.h so recording never bounces a cache line
// between application threads.
//
// Bucket layout: 16 linear sub-buckets per power of two. Values below 16
// map exactly (bucket i == value i); above that, a value with most
// significant bit m lands in sub-bucket (v >> (m - 4)) of octave m. Bucket
// width is value/16 at worst, so any quantile read from the histogram is
// within +6.25% of the exact order statistic — tight enough to gate p99
// regressions in CI, cheap enough (two relaxed RMWs on a per-thread shard)
// to leave on in production. This is the runtime-queryable replacement for
// the benchmark harness's sort-everything percentile math.
//
// Record() is wait-free and exact: each sample lands on exactly one shard
// bucket, and Snapshot() folds every shard, so counts and sums lose
// nothing. Snapshot() is O(shards * buckets) — a stats-plane read, never a
// hot-path one.

#ifndef DIMMUNIX_OBS_HISTOGRAM_H_
#define DIMMUNIX_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/sharded_counter.h"

namespace dimmunix {
namespace obs {

// Plain-value fold of a Histogram, safe to pass across threads.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;

  // Nearest-rank percentile (p in (0, 100]), reported as the upper bound of
  // the bucket holding that rank: always >= the exact order statistic and
  // within +6.25% of it. Returns 0 on an empty histogram.
  std::uint64_t Percentile(double p) const;

  std::uint64_t Mean() const { return count == 0 ? 0 : sum / count; }
};

class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  // Highest index is ((63 - kSubBucketBits) << kSubBucketBits) + (2 * 16 - 1).
  static constexpr std::size_t kBucketCount =
      ((63 - kSubBucketBits) << kSubBucketBits) + 2 * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static std::size_t BucketIndex(std::uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<std::size_t>(value);
    }
    const int msb = 63 - __builtin_clzll(value);
    const int shift = msb - kSubBucketBits;
    return static_cast<std::size_t>(
        (static_cast<std::size_t>(msb - kSubBucketBits) << kSubBucketBits) + (value >> shift));
  }

  // Smallest / largest value mapping to bucket `index`.
  static std::uint64_t BucketLowerBound(std::size_t index) {
    if (index < 2 * kSubBuckets) {
      return index;
    }
    const std::size_t octave = index >> kSubBucketBits;  // >= 2
    const std::uint64_t sub = kSubBuckets + (index & (kSubBuckets - 1));
    return sub << (octave - 1);
  }
  static std::uint64_t BucketUpperBound(std::size_t index) {
    if (index < 2 * kSubBuckets) {
      return index;
    }
    const std::size_t octave = index >> kSubBucketBits;
    return BucketLowerBound(index) + ((std::uint64_t{1} << (octave - 1)) - 1);
  }

  // Any thread, wait-free.
  void Record(std::uint64_t value) {
    Shard& shard =
        shards_[sharded_counter_internal::ThreadShardSlot() & (kShards - 1)];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  // Exact fold across shards.
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.buckets.assign(kBucketCount, 0);
    for (std::size_t s = 0; s < kShards; ++s) {
      snap.sum += shards_[s].sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        const std::uint64_t n = shards_[s].buckets[b].load(std::memory_order_relaxed);
        snap.buckets[b] += n;
        snap.count += n;
      }
    }
    return snap;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kBucketCount] = {};
  };
  Shard shards_[kShards];
};

inline std::uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  // Nearest rank: the smallest rank >= p% of the population, at least 1.
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count));
  if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(count)) {
    ++rank;
  }
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count) {
    rank = count;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      return Histogram::BucketUpperBound(b);
    }
  }
  return Histogram::BucketUpperBound(buckets.size() - 1);
}

}  // namespace obs
}  // namespace dimmunix

#endif  // DIMMUNIX_OBS_HISTOGRAM_H_
