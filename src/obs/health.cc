// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/obs/health.h"

#include <algorithm>

namespace dimmunix {
namespace obs {
namespace {

// A churn ratio over a handful of requests is noise, not a storm; the
// match-churn rule only evaluates once the window saw this many requests.
constexpr std::uint64_t kChurnMinRequests = 64;

struct RuleMeta {
  const char* rule;
  const char* signal;
};

// Order is the RuleState array order; names are stable identifiers used in
// Prometheus labels and `dimctl alerts`, so treat them as API.
constexpr RuleMeta kRules[HealthEngine::kRuleCount] = {
    {"match_churn", "cover fast-path retries per request (window)"},
    {"epoch_stall", "% of wall time stalled entering stop-the-stripes epochs"},
    {"ipc_backlog", "IPC pending-op log depth"},
    {"ipc_flush_latency", "IPC pending-log drain p99 (us, cumulative)"},
    {"arena_exhaustion", "arena participant-slot / edge-row utilization %"},
    {"ring_drops", "trace-ring events dropped per second"},
    {"store_backlog", "history store writer queue depth"},
    {"resync_stale", "history resync age / configured resync period"},
};

struct Eval {
  bool valid = false;   // rule could be evaluated from this sample pair
  double value = 0.0;
  double threshold = 0.0;
};

Eval Evaluate(int rule, const HealthThresholds& t, const HealthSample& prev,
              bool have_prev, const HealthSample& s) {
  Eval e;
  const double elapsed_ns =
      have_prev && s.now_ns > prev.now_ns ? static_cast<double>(s.now_ns - prev.now_ns) : 0.0;
  switch (rule) {
    case 0: {  // match_churn
      e.threshold = t.retry_ratio;
      if (elapsed_ns <= 0.0 || s.requests < prev.requests) {
        break;
      }
      const std::uint64_t requests = s.requests - prev.requests;
      if (requests < kChurnMinRequests || s.match_fast_retries < prev.match_fast_retries) {
        break;
      }
      e.valid = true;
      e.value = static_cast<double>(s.match_fast_retries - prev.match_fast_retries) /
                static_cast<double>(requests);
      break;
    }
    case 1: {  // epoch_stall
      e.threshold = t.epoch_stall_pct;
      if (elapsed_ns <= 0.0 || s.epoch_stall_ns < prev.epoch_stall_ns) {
        break;
      }
      e.valid = true;
      e.value = 100.0 * static_cast<double>(s.epoch_stall_ns - prev.epoch_stall_ns) / elapsed_ns;
      break;
    }
    case 2: {  // ipc_backlog
      e.threshold = static_cast<double>(t.ipc_backlog);
      if (!s.ipc_running) {
        break;
      }
      e.valid = true;
      e.value = static_cast<double>(s.ipc_pending_ops);
      break;
    }
    case 3: {  // ipc_flush_latency
      e.threshold = static_cast<double>(t.ipc_flush_p99_us);
      if (!s.ipc_running || s.ipc_flush_p99_ns == 0) {
        break;
      }
      e.valid = true;
      e.value = static_cast<double>(s.ipc_flush_p99_ns) / 1000.0;
      break;
    }
    case 4: {  // arena_exhaustion
      e.threshold = t.arena_pct;
      if (!s.ipc_running) {
        break;
      }
      double pct = 0.0;
      if (s.arena_participants_cap > 0) {
        pct = 100.0 * static_cast<double>(s.arena_participants_used) /
              static_cast<double>(s.arena_participants_cap);
      }
      if (s.arena_edges_cap > 0) {
        pct = std::max(pct, 100.0 * static_cast<double>(s.arena_edges_used) /
                                static_cast<double>(s.arena_edges_cap));
      }
      e.valid = s.arena_participants_cap > 0 || s.arena_edges_cap > 0;
      e.value = pct;
      break;
    }
    case 5: {  // ring_drops
      e.threshold = t.ring_drops_per_s;
      if (elapsed_ns <= 0.0 || s.ring_dropped < prev.ring_dropped) {
        break;
      }
      e.valid = true;
      e.value = static_cast<double>(s.ring_dropped - prev.ring_dropped) * 1e9 / elapsed_ns;
      break;
    }
    case 6: {  // store_backlog
      e.threshold = static_cast<double>(t.store_queue);
      if (!s.store_running) {
        break;
      }
      e.valid = true;
      e.value = static_cast<double>(s.store_queued);
      break;
    }
    case 7: {  // resync_stale
      e.threshold = t.resync_stale_x;
      if (!s.store_running || s.resync_period_ms == 0 || s.last_resync_age_ms < 0) {
        break;
      }
      e.valid = true;
      e.value = static_cast<double>(s.last_resync_age_ms) /
                static_cast<double>(s.resync_period_ms);
      break;
    }
    default:
      break;
  }
  return e;
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kActive:
      return "active";
    case AlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

HealthEngine::HealthEngine(HealthThresholds thresholds) : thresholds_(thresholds) {}

void HealthEngine::Tick(const HealthSample& sample) {
  std::lock_guard<std::mutex> guard(m_);
  ++ticks_;
  for (int i = 0; i < kRuleCount; ++i) {
    const Eval e = Evaluate(i, thresholds_, prev_, have_prev_, sample);
    RuleState& r = rules_[i];
    if (e.valid) {
      r.value = e.value;
    }
    // An unevaluable rule (subsystem off, window unprimed) counts as clear:
    // an alert must not stay pinned active after its subsystem shut down.
    const bool breach = e.valid && e.value > e.threshold;
    if (breach) {
      r.clear_streak = 0;
      ++r.breach_streak;
      if (r.state == AlertState::kInactive || r.state == AlertState::kResolved) {
        r.state = AlertState::kFiring;
        r.breach_streak = 1;
        r.since_ns = sample.now_ns;
        ++r.fired;
      }
      if (r.state == AlertState::kFiring &&
          r.breach_streak >= std::max(1, thresholds_.fire_ticks)) {
        r.state = AlertState::kActive;
        r.since_ns = sample.now_ns;
      }
    } else {
      r.breach_streak = 0;
      ++r.clear_streak;
      if (r.state == AlertState::kFiring) {
        // Never confirmed — a one-tick flap, not an incident.
        r.state = AlertState::kInactive;
        r.since_ns = sample.now_ns;
      } else if (r.state == AlertState::kActive &&
                 r.clear_streak >= std::max(1, thresholds_.resolve_ticks)) {
        // Latched as resolved (not inactive) so an operator arriving after
        // the storm still sees that it happened.
        r.state = AlertState::kResolved;
        r.since_ns = sample.now_ns;
      }
    }
  }
  prev_ = sample;
  have_prev_ = true;
}

std::vector<AlertSnapshot> HealthEngine::Snapshot() const {
  std::lock_guard<std::mutex> guard(m_);
  std::vector<AlertSnapshot> out;
  out.reserve(kRuleCount);
  for (int i = 0; i < kRuleCount; ++i) {
    const RuleState& r = rules_[i];
    AlertSnapshot snap;
    snap.rule = kRules[i].rule;
    snap.signal = kRules[i].signal;
    snap.state = r.state;
    snap.value = r.value;
    // Threshold re-derived from the static table so the snapshot shows it
    // even before the rule ever evaluated.
    snap.threshold = Evaluate(i, thresholds_, prev_, false, prev_).threshold;
    snap.fired_count = r.fired;
    snap.since_ns = r.since_ns;
    out.push_back(std::move(snap));
  }
  return out;
}

HealthEngine::Summary HealthEngine::GetSummary() const {
  std::lock_guard<std::mutex> guard(m_);
  Summary s;
  s.ticks = ticks_;
  for (const RuleState& r : rules_) {
    s.fired_total += r.fired;
    switch (r.state) {
      case AlertState::kFiring:
        ++s.firing;
        break;
      case AlertState::kActive:
        ++s.active;
        break;
      case AlertState::kResolved:
        ++s.resolved;
        break;
      case AlertState::kInactive:
        break;
    }
  }
  return s;
}

}  // namespace obs
}  // namespace dimmunix
