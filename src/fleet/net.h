// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Minimal TCP plumbing for the fleet subsystem: IPv4 listen/connect with
// real timeouts, deadline-bounded whole-buffer reads/writes, and line
// reads — the socket substrate under src/fleet/daemon.h and the `dimctl
// --target` remote client. Everything here is blocking-with-deadline; the
// daemon's accept loop and gossip thread are plain threads, like the
// control server (src/control/server.cc), not an event loop — fleet traffic
// is a handful of small frames per gossip period, not a data plane.

#ifndef DIMMUNIX_FLEET_NET_H_
#define DIMMUNIX_FLEET_NET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace dimmunix {
namespace fleet {

// "host:port" -> parts. False on a malformed address (missing colon,
// non-numeric or out-of-range port).
bool ParseHostPort(std::string_view address, std::string* host, std::uint16_t* port);

// Binds + listens on host:port (IPv4; host "0.0.0.0" binds all interfaces).
// Port 0 picks an ephemeral port; *bound_port receives the actual one.
// Returns the listening fd, or -1 with *error set.
int ListenTcp(const std::string& host, std::uint16_t port, std::uint16_t* bound_port,
              std::string* error);

// Connects to host:port within `timeout` (non-blocking connect + poll).
// Returns the connected fd, or -1 with *error set.
int ConnectTcp(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout, std::string* error);

// Numeric peer address ("a.b.c.d") of a connected socket, "" on failure.
std::string PeerAddress(int fd);

// Whole-buffer send with SIGPIPE suppressed; false on error/timeout (the
// deadline is enforced via SO_SNDTIMEO shrunk to the time remaining).
bool SendAllDeadline(int fd, std::string_view data,
                     std::chrono::steady_clock::time_point deadline);

// Reads exactly `want` bytes into *out (appended); false on EOF, error, or
// deadline.
bool ReadExactDeadline(int fd, std::size_t want, std::string* out,
                       std::chrono::steady_clock::time_point deadline);

// Reads up to and including the first '\n' (returned without it, trailing
// '\r' stripped). Bytes past the newline are returned via *spill — the
// caller must prepend them to the next read (binary frames follow command
// lines on the same connection). False on EOF-before-newline, error,
// deadline, or a line beyond `max_line` bytes.
bool ReadLineDeadline(int fd, std::string* line, std::string* spill, std::size_t max_line,
                      std::chrono::steady_clock::time_point deadline);

// One-shot text request against a daemon (or any line-protocol TCP server):
// connect, send `line` (newline appended), half-close, read the whole reply
// until EOF. The reply's first line is "ok" or "err <reason>" exactly like
// the UDS control protocol. False (with *error set) on connect/IO failure.
bool QueryTcp(const std::string& address, const std::string& line,
              std::chrono::milliseconds timeout, std::string* reply, std::string* error);

}  // namespace fleet
}  // namespace dimmunix

#endif  // DIMMUNIX_FLEET_NET_H_
