// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/fleet/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/fleet/net.h"
#include "src/obs/export.h"
#include "src/obs/trace_event.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace fleet {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::string Err(const std::string& reason) { return "err " + reason + "\n"; }

std::int64_t AgeMs(SteadyClock::time_point since, SteadyClock::time_point now) {
  if (since == SteadyClock::time_point{}) {
    return -1;
  }
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - since).count();
}

struct FdCloser {
  int fd;
  explicit FdCloser(int f) : fd(f) {}
  ~FdCloser() { ::close(fd); }
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;
};

// close(2) with unread bytes in the receive buffer turns into RST, which
// may destroy a reply still in flight to the client. Half-close and drain
// until the client's EOF (bounded) so the last thing we wrote arrives.
void DrainToEof(int fd, std::chrono::milliseconds budget) {
  (void)::shutdown(fd, SHUT_WR);
  timeval tv{};
  tv.tv_sec = budget.count() / 1000;
  tv.tv_usec = (budget.count() % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char sink[512];
  while (::read(fd, sink, sizeof(sink)) > 0) {
  }
}

// Reads one complete frame from `fd`, consuming `buffer` first (bytes that
// spilled past the command line). On success *frame holds header + payload
// and *buffer whatever followed it.
bool ReadFrameBytes(int fd, std::string* buffer, std::string* frame,
                    SteadyClock::time_point deadline, std::string* error) {
  while (buffer->size() < kFrameHeaderBytes) {
    if (!ReadExactDeadline(fd, kFrameHeaderBytes - buffer->size(), buffer, deadline)) {
      *error = "short read (frame header)";
      return false;
    }
  }
  FrameKind kind{};
  std::uint32_t length = 0;
  const DecodeStatus status = PeekFrame(*buffer, &kind, &length);
  if (status != DecodeStatus::kOk) {
    *error = DecodeStatusName(status);
    return false;
  }
  const std::size_t total = kFrameHeaderBytes + length;
  while (buffer->size() < total) {
    if (!ReadExactDeadline(fd, total - buffer->size(), buffer, deadline)) {
      *error = "short read (frame payload)";
      return false;
    }
  }
  *frame = buffer->substr(0, total);
  buffer->erase(0, total);
  return true;
}

std::string DaemonHelpText() {
  return
      "status / fleet status   daemon summary\n"
      "fleet peers             per-peer gossip statistics\n"
      "fleet push <addr>       sync with <addr> now, send-only\n"
      "fleet pull <addr>       sync with <addr> now, merge-only\n"
      "fleet exec <cmd...>     run <cmd> here and on every configured peer\n"
      "fleet alerts            per-host health-alert summaries (who is churning)\n"
      "config                  daemon configuration\n"
      "metrics                 counters + propagation histogram, Prometheus text\n"
      "trace start|stop|dump   flight-recorder control\n"
      "help                    this text\n";
}

// Reporters that stop refreshing fall out of the table: a crashed process
// must not show as churning forever, and gossip must not resurrect it.
constexpr std::chrono::milliseconds kAlertTtl{120000};

// Decodes one wire record (see AlertReport in daemon.h). *age_ms receives
// the sender-claimed age so the receiver can back-date last_update.
bool ParseAlertRecord(const std::string& token, AlertReport* out, std::int64_t* age_ms) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (fields.size() < 4) {
    const std::size_t semi = token.find(';', pos);
    if (semi == std::string::npos) {
      return false;
    }
    fields.push_back(token.substr(pos, semi - pos));
    pos = semi + 1;
  }
  fields.push_back(token.substr(pos));  // rules (may itself hold no ';')
  if (fields[0].empty()) {
    return false;
  }
  char* end = nullptr;
  const long active = std::strtol(fields[1].c_str(), &end, 10);
  if (end == fields[1].c_str() || *end != '\0' || active < 0) {
    return false;
  }
  const long total = std::strtol(fields[2].c_str(), &end, 10);
  if (end == fields[2].c_str() || *end != '\0' || total < 0) {
    return false;
  }
  const long long age = std::strtoll(fields[3].c_str(), &end, 10);
  if (end == fields[3].c_str() || *end != '\0' || age < 0) {
    return false;
  }
  out->reporter = fields[0];
  out->active = static_cast<int>(active);
  out->total = static_cast<int>(total);
  out->rules = fields[4] == "-" ? std::string() : fields[4];
  *age_ms = age;
  return true;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      recorder_(obs::Recorder::Options{options_.trace_enabled, 8192, true}),
      peer_table_(options_.peers) {}

Daemon::~Daemon() { Stop(); }

bool Daemon::Start(std::string* error) {
  if (running_) {
    *error = "already started";
    return false;
  }
  if (options_.history_paths.empty()) {
    *error = "no history file configured (need at least one --history)";
    return false;
  }
  listen_fd_ = ListenTcp(options_.listen_host, options_.listen_port, &bound_port_, error);
  if (listen_fd_ < 0) {
    return false;
  }
  if (::pipe(stop_pipe_) != 0) {
    *error = "pipe: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stop_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] {
    recorder_.NameThisThread("dimmunixd-accept");
    AcceptLoop();
  });
  if (options_.gossip_period.count() > 0 && peer_table_.size() > 0) {
    gossip_thread_ = std::thread([this] {
      recorder_.NameThisThread("dimmunixd-gossip");
      GossipLoop();
    });
  }
  return true;
}

void Daemon::Stop() {
  if (!running_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(gossip_m_);
    stop_ = true;
  }
  gossip_cv_.notify_all();
  const char byte = 0;
  (void)!::write(stop_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (gossip_thread_.joinable()) {
    gossip_thread_.join();
  }
  ::close(listen_fd_);
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  listen_fd_ = stop_pipe_[0] = stop_pipe_[1] = -1;
  running_ = false;
}

std::string Daemon::listen_address() const {
  return options_.listen_host + ":" + std::to_string(bound_port_);
}

// --- Threads -----------------------------------------------------------------

void Daemon::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if (fds[1].revents != 0) {
      return;  // Stop()
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    FdCloser closer(fd);
    const std::string source = PeerAddress(fd);
    if (!SourceAllowed(source)) {
      {
        std::lock_guard<std::mutex> lock(state_m_);
        stats_.rejected_conns++;
      }
      (void)SendAllDeadline(fd, Err("source " + source + " not allowed"),
                            SteadyClock::now() + std::chrono::seconds(1));
      DrainToEof(fd, std::chrono::seconds(1));
      continue;
    }
    // Served inline: commands are a handful of small frames, and serving one
    // connection at a time is exactly the behavior of the UDS control server.
    ServeConnection(fd);
  }
}

void Daemon::GossipLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(gossip_m_);
      if (gossip_cv_.wait_for(lock, options_.gossip_period, [this] { return stop_; })) {
        return;
      }
    }
    GossipOnce();
  }
}

void Daemon::GossipOnce() {
  const auto now = SteadyClock::now();
  std::vector<std::string> due;
  {
    std::lock_guard<std::mutex> lock(state_m_);
    for (std::size_t i = 0; i < peer_table_.size(); ++i) {
      if (peer_table_.Due(i, now)) {
        due.push_back(peer_table_.at(i).address);
      }
    }
  }
  for (const std::string& address : due) {
    std::string error;
    (void)SyncWith(address, /*do_send=*/true, /*do_merge=*/true, nullptr, nullptr, &error);
  }
  // Alert summaries ride the same cadence, but out-of-band from the binary
  // sync protocol: one text line per peer, best-effort.
  PushAlertsToPeers(due);
}

bool Daemon::SourceAllowed(const std::string& source) const {
  if (!options_.reject_loopback && source.compare(0, 4, "127.") == 0) {
    return true;
  }
  for (const std::string& allowed : options_.allow) {
    if (source == allowed) {
      return true;
    }
  }
  return false;
}

// --- Sync rounds -------------------------------------------------------------

persist::HistoryImage Daemon::LoadUnion() {
  persist::HistoryImage image;
  for (const std::string& path : options_.history_paths) {
    persist::HistoryImage one;
    (void)persist::LoadHistoryFile(path, &one);
    persist::MergeInto(&image, one, persist::MergePolicy::kPreferIncoming);
  }
  const auto now = SteadyClock::now();
  std::lock_guard<std::mutex> lock(state_m_);
  stats_.signatures = image.records.size();
  for (const persist::SignatureRecord& record : image.records) {
    // Records that appeared locally (a process escaped a deadlock and wrote
    // its file) start their propagation clock at the scan that finds them.
    first_seen_.emplace(persist::SignatureHash(record), now);
  }
  return image;
}

Delta Daemon::BuildDelta(const persist::HistoryImage& mine,
                         const std::vector<persist::DigestEntry>& theirs) {
  Delta delta;
  delta.image = persist::DeltaAgainst(mine, theirs);
  const auto now = SteadyClock::now();
  std::lock_guard<std::mutex> lock(state_m_);
  delta.ages_ms.reserve(delta.image.records.size());
  for (const persist::SignatureRecord& record : delta.image.records) {
    const auto it = first_seen_.find(persist::SignatureHash(record));
    std::int64_t age = it == first_seen_.end() ? 0 : AgeMs(it->second, now);
    if (age < 0) {
      age = 0;
    }
    delta.ages_ms.push_back(age > 0xffffffffLL ? 0xffffffffU
                                               : static_cast<std::uint32_t>(age));
  }
  return delta;
}

std::uint64_t Daemon::MergeDelta(const Delta& delta) {
  if (delta.image.records.empty()) {
    return 0;
  }
  const auto now = SteadyClock::now();
  std::uint64_t fresh = 0;
  {
    std::lock_guard<std::mutex> lock(state_m_);
    for (std::size_t i = 0; i < delta.image.records.size(); ++i) {
      const std::uint64_t hash = persist::SignatureHash(delta.image.records[i]);
      if (first_seen_.find(hash) != first_seen_.end()) {
        continue;
      }
      // The sender's age says how long ago the record was born fleet-wide;
      // back-date our first_seen so the age keeps accumulating if we gossip
      // it onward, and record the end-to-end propagation latency here.
      const std::uint32_t age = i < delta.ages_ms.size() ? delta.ages_ms[i] : 0;
      first_seen_.emplace(hash, now - std::chrono::milliseconds(age));
      propagation_ms_.Record(age);
      fresh++;
    }
    stats_.records_in += delta.image.records.size();
    stats_.records_new += fresh;
  }
  for (const std::string& path : options_.history_paths) {
    std::string error;
    if (!persist::MergeIntoFile(path, delta.image, nullptr, &error)) {
      std::lock_guard<std::mutex> lock(state_m_);
      stats_.merge_errors++;
    }
  }
  return fresh;
}

bool Daemon::SyncWith(const std::string& address, bool do_send, bool do_merge,
                      std::uint64_t* records_in, std::uint64_t* records_out,
                      std::string* error) {
  std::string host;
  std::uint16_t port = 0;
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  const auto start = SteadyClock::now();
  const auto deadline = start + options_.io_timeout;
  SyncOutcome outcome;
  bool ok = false;
  if (!ParseHostPort(address, &host, &port)) {
    *err = "malformed peer address '" + address + "' (want host:port)";
  } else {
    std::lock_guard<std::mutex> sync_lock(sync_m_);
    ok = [&] {
      const persist::HistoryImage mine = LoadUnion();
      const std::string digest_frame = EncodeDigestFrame(persist::DigestOf(mine));
      if (digest_frame.empty()) {
        *err = "local digest exceeds frame bounds";
        return false;
      }
      const int fd = ConnectTcp(host, port, options_.io_timeout, err);
      if (fd < 0) {
        return false;
      }
      FdCloser closer(fd);
      if (!SendAllDeadline(fd, "fleet sync\n" + digest_frame, deadline)) {
        *err = "send failed (digest)";
        return false;
      }
      std::string line;
      std::string buffer;
      if (!ReadLineDeadline(fd, &line, &buffer, 4096, deadline)) {
        *err = "no reply from peer";
        return false;
      }
      if (line != "ok") {
        *err = "peer replied '" + line + "'";
        return false;
      }
      std::string frame;
      if (!ReadFrameBytes(fd, &buffer, &frame, deadline, err)) {
        return false;
      }
      Delta their_delta;
      DecodeStatus status = DecodeDeltaFrame(frame, &their_delta);
      if (status != DecodeStatus::kOk) {
        std::lock_guard<std::mutex> lock(state_m_);
        stats_.bad_frames++;
        *err = std::string("delta frame: ") + DecodeStatusName(status);
        return false;
      }
      if (!ReadFrameBytes(fd, &buffer, &frame, deadline, err)) {
        return false;
      }
      std::vector<persist::DigestEntry> their_digest;
      status = DecodeDigestFrame(frame, &their_digest);
      if (status != DecodeStatus::kOk) {
        std::lock_guard<std::mutex> lock(state_m_);
        stats_.bad_frames++;
        *err = std::string("digest frame: ") + DecodeStatusName(status);
        return false;
      }
      const Delta out = do_send ? BuildDelta(mine, their_digest) : Delta{};
      const std::string out_frame = EncodeDeltaFrame(out);
      if (out_frame.empty()) {
        *err = "outgoing delta exceeds frame bounds";
        return false;
      }
      if (!SendAllDeadline(fd, out_frame, deadline)) {
        *err = "send failed (delta)";
        return false;
      }
      if (do_merge) {
        MergeDelta(their_delta);
        outcome.in = their_delta.image.records.size();
      }
      outcome.out = out.image.records.size();
      // The responder confirms only after merging our delta — without this,
      // `fleet push` would report success while the peer's file still lacks
      // the shipped records.
      if (!ReadLineDeadline(fd, &line, &buffer, 4096, deadline)) {
        *err = "peer never confirmed the round";
        return false;
      }
      if (line != "done") {
        *err = "peer ended the round with '" + line + "'";
        return false;
      }
      return true;
    }();
  }
  const auto now = SteadyClock::now();
  int peer_index = -1;
  {
    std::lock_guard<std::mutex> lock(state_m_);
    peer_index = peer_table_.Find(address);
    if (ok) {
      stats_.rounds_ok++;
      stats_.records_out += outcome.out;
      last_sync_ = now;
      if (peer_index >= 0) {
        peer_table_.NoteSuccess(static_cast<std::size_t>(peer_index), now, outcome.in,
                                outcome.out);
      }
    } else {
      stats_.rounds_failed++;
      if (peer_index >= 0) {
        peer_table_.NoteFailure(static_cast<std::size_t>(peer_index), now,
                                options_.gossip_period, *err);
      }
    }
  }
  recorder_.Span(obs::TraceEventType::kFleetSync, obs::NowNs(),
                 std::chrono::duration_cast<std::chrono::nanoseconds>(now - start).count(),
                 obs::SaturateAux(peer_index), ok ? 0 : 1,
                 (outcome.in << 32) | outcome.out);
  if (records_in != nullptr) {
    *records_in = outcome.in;
  }
  if (records_out != nullptr) {
    *records_out = outcome.out;
  }
  return ok;
}

// --- Serving -----------------------------------------------------------------

void Daemon::ServeConnection(int fd) {
  const auto deadline = SteadyClock::now() + options_.io_timeout;
  std::string line;
  std::string spill;
  if (!ReadLineDeadline(fd, &line, &spill, 4096, deadline)) {
    return;
  }
  if (line == "fleet sync") {
    ServeSync(fd, &spill, deadline);
    return;
  }
  (void)SendAllDeadline(fd, HandleCommandLine(line), deadline);
}

void Daemon::ServeSync(int fd, std::string* spill, SteadyClock::time_point deadline) {
  const auto start = SteadyClock::now();
  std::string buffer = std::move(*spill);
  std::string frame;
  std::string error;
  if (!ReadFrameBytes(fd, &buffer, &frame, deadline, &error)) {
    std::lock_guard<std::mutex> lock(state_m_);
    stats_.bad_frames++;
    return;
  }
  std::vector<persist::DigestEntry> theirs;
  const DecodeStatus status = DecodeDigestFrame(frame, &theirs);
  if (status != DecodeStatus::kOk) {
    {
      std::lock_guard<std::mutex> lock(state_m_);
      stats_.bad_frames++;
    }
    (void)SendAllDeadline(fd, Err(std::string("digest frame: ") + DecodeStatusName(status)),
                          deadline);
    return;
  }
  // try_lock, never lock: if our own gossip thread is mid-round with the
  // peer that is now syncing at us, blocking here would deadlock the two
  // daemons against each other's accept loops until both deadlines fire.
  // "busy" makes the initiator's round fail cleanly; it retries next period.
  std::unique_lock<std::mutex> sync_lock(sync_m_, std::try_to_lock);
  if (!sync_lock.owns_lock()) {
    (void)SendAllDeadline(fd, Err("busy (sync in progress)"), deadline);
    return;
  }
  const persist::HistoryImage mine = LoadUnion();
  const Delta out = BuildDelta(mine, theirs);
  const std::string delta_frame = EncodeDeltaFrame(out);
  const std::string digest_frame = EncodeDigestFrame(persist::DigestOf(mine));
  if (delta_frame.empty() || digest_frame.empty()) {
    (void)SendAllDeadline(fd, Err("history exceeds frame bounds"), deadline);
    return;
  }
  if (!SendAllDeadline(fd, "ok\n" + delta_frame + digest_frame, deadline)) {
    return;
  }
  if (!ReadFrameBytes(fd, &buffer, &frame, deadline, &error)) {
    std::lock_guard<std::mutex> lock(state_m_);
    stats_.bad_frames++;
    return;
  }
  Delta in;
  if (DecodeDeltaFrame(frame, &in) != DecodeStatus::kOk) {
    std::lock_guard<std::mutex> lock(state_m_);
    stats_.bad_frames++;
    return;
  }
  MergeDelta(in);
  const auto now = SteadyClock::now();
  {
    std::lock_guard<std::mutex> lock(state_m_);
    stats_.syncs_served++;
    stats_.records_out += out.image.records.size();
    last_sync_ = now;
  }
  // Confirm last: a completed round guarantees the merge *and* the stats
  // the initiator (or a test) may immediately read are already visible.
  (void)SendAllDeadline(fd, "done\n", deadline);
  recorder_.Span(obs::TraceEventType::kFleetSync, obs::NowNs(),
                 std::chrono::duration_cast<std::chrono::nanoseconds>(now - start).count(),
                 obs::kNoMatchAux, 2,
                 (static_cast<std::uint64_t>(in.image.records.size()) << 32) |
                     out.image.records.size());
}

// --- Command plane -----------------------------------------------------------

DaemonStatsSnapshot Daemon::stats() const {
  std::lock_guard<std::mutex> lock(state_m_);
  DaemonStatsSnapshot snap = stats_;
  snap.last_sync_age_ms = AgeMs(last_sync_, SteadyClock::now());
  return snap;
}

std::vector<PeerState> Daemon::peers() const {
  std::lock_guard<std::mutex> lock(state_m_);
  std::vector<PeerState> out;
  out.reserve(peer_table_.size());
  for (std::size_t i = 0; i < peer_table_.size(); ++i) {
    out.push_back(peer_table_.at(i));
  }
  return out;
}

// --- Alert table -------------------------------------------------------------

void Daemon::PruneAlertsLocked(SteadyClock::time_point now) {
  for (auto it = alert_table_.begin(); it != alert_table_.end();) {
    if (now - it->second.last_update > kAlertTtl) {
      it = alert_table_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<AlertReport> Daemon::alert_reports() const {
  const auto now = SteadyClock::now();
  std::vector<AlertReport> reports;
  {
    std::lock_guard<std::mutex> lock(state_m_);
    // Prune on read in the const path too: a stale reporter must disappear
    // from `fleet alerts` even when nothing is writing.
    const_cast<Daemon*>(this)->PruneAlertsLocked(now);
    reports.reserve(alert_table_.size());
    for (const auto& [reporter, report] : alert_table_) {
      reports.push_back(report);
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const AlertReport& a, const AlertReport& b) { return a.reporter < b.reporter; });
  return reports;
}

std::size_t Daemon::IngestAlertRecords(const std::string& records) {
  const auto now = SteadyClock::now();
  std::size_t accepted = 0;
  std::istringstream stream(records);
  std::string token;
  std::lock_guard<std::mutex> lock(state_m_);
  while (stream >> token) {
    AlertReport report;
    std::int64_t age_ms = 0;
    if (!ParseAlertRecord(token, &report, &age_ms)) {
      continue;
    }
    report.last_update = now - std::chrono::milliseconds(age_ms);
    auto [it, inserted] = alert_table_.emplace(report.reporter, report);
    if (!inserted) {
      // Freshest wins: a gossiped copy must never roll back a summary the
      // reporter pushed to us directly.
      if (report.last_update < it->second.last_update) {
        continue;
      }
      it->second = report;
    }
    ++accepted;
  }
  PruneAlertsLocked(now);
  return accepted;
}

std::string Daemon::BuildAlertRecords() {
  const auto now = SteadyClock::now();
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(state_m_);
  PruneAlertsLocked(now);
  bool first = true;
  for (const auto& [reporter, report] : alert_table_) {
    out << (first ? "" : " ") << report.reporter << ';' << report.active << ';' << report.total
        << ';' << AgeMs(report.last_update, now) << ';'
        << (report.rules.empty() ? "-" : report.rules);
    first = false;
  }
  return out.str();
}

void Daemon::PushAlertsToPeers(const std::vector<std::string>& addresses) {
  const std::string records = BuildAlertRecords();
  if (records.empty()) {
    return;
  }
  for (const std::string& address : addresses) {
    std::string reply;
    std::string error;
    (void)QueryTcp(address, "fleet alerts-report " + records, options_.io_timeout, &reply,
                   &error);
  }
}

std::string Daemon::DoFleetAlerts() {
  const std::vector<AlertReport> reports = alert_reports();
  const auto now = SteadyClock::now();
  int active_sum = 0;
  for (const AlertReport& r : reports) {
    active_sum += r.active;
  }
  std::ostringstream out;
  out << "ok\n";
  out << "reporters=" << reports.size() << "\n";
  out << "alerts_active=" << active_sum << "\n";
  for (const AlertReport& r : reports) {
    out << "alert " << r.reporter << " active=" << r.active << " total=" << r.total
        << " age_ms=" << AgeMs(r.last_update, now)
        << " rules=" << (r.rules.empty() ? "-" : r.rules) << "\n";
  }
  return out.str();
}

std::string Daemon::DoFleetAlertsReport(const std::string& records) {
  const std::size_t accepted = IngestAlertRecords(records);
  std::ostringstream out;
  out << "ok\naccepted=" << accepted << "\n";
  return out.str();
}

std::string Daemon::DoFleetStatus() {
  const DaemonStatsSnapshot s = stats();
  const obs::HistogramSnapshot prop = propagation_ms_.Snapshot();
  std::ostringstream out;
  out << "ok\n";
  out << "daemon=dimmunixd\n";
  out << "pid=" << ::getpid() << "\n";
  out << "listen=" << listen_address() << "\n";
  for (const std::string& path : options_.history_paths) {
    out << "history=" << path << "\n";
  }
  out << "peers=" << peer_table_.size() << "\n";
  out << "gossip_ms=" << options_.gossip_period.count() << "\n";
  out << "signatures=" << s.signatures << "\n";
  out << "rounds_ok=" << s.rounds_ok << "\n";
  out << "rounds_failed=" << s.rounds_failed << "\n";
  out << "syncs_served=" << s.syncs_served << "\n";
  out << "records_in=" << s.records_in << "\n";
  out << "records_out=" << s.records_out << "\n";
  out << "records_new=" << s.records_new << "\n";
  out << "merge_errors=" << s.merge_errors << "\n";
  out << "rejected_conns=" << s.rejected_conns << "\n";
  out << "bad_frames=" << s.bad_frames << "\n";
  out << "last_sync_age_ms=" << s.last_sync_age_ms << "\n";
  out << "propagation_count=" << prop.count << "\n";
  out << "propagation_p50_ms=" << prop.Percentile(50) << "\n";
  out << "propagation_p99_ms=" << prop.Percentile(99) << "\n";
  out << "tracing=" << (recorder_.tracing() ? 1 : 0) << "\n";
  // Fleet-wide self-diagnosis roll-up, one line per reporting host — the
  // quick answer to "is anything in the fleet churning right now?".
  const std::vector<AlertReport> reports = alert_reports();
  int active_sum = 0;
  for (const AlertReport& r : reports) {
    active_sum += r.active;
  }
  out << "alert_reporters=" << reports.size() << "\n";
  out << "alerts_active=" << active_sum << "\n";
  for (const AlertReport& r : reports) {
    out << "reporter " << r.reporter << " alerts=" << r.active << "/" << r.total
        << " rules=" << (r.rules.empty() ? "-" : r.rules) << "\n";
  }
  return out.str();
}

std::string Daemon::DoFleetPeers() {
  const std::vector<PeerState> peer_list = peers();
  const auto now = SteadyClock::now();
  std::ostringstream out;
  out << "ok\n";
  out << "peers=" << peer_list.size() << "\n";
  for (const PeerState& peer : peer_list) {
    out << "peer " << peer.address << " rounds_ok=" << peer.rounds_ok
        << " rounds_failed=" << peer.rounds_failed << " in=" << peer.records_in
        << " out=" << peer.records_out << " failures=" << peer.consecutive_failures
        << " last_sync_age_ms=" << AgeMs(peer.last_ok, now);
    if (!peer.last_error.empty()) {
      out << " err=" << peer.last_error;
    }
    out << "\n";
  }
  return out.str();
}

std::string Daemon::DoFleetSyncVerb(const std::string& address, bool do_send, bool do_merge) {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  std::string error;
  if (!SyncWith(address, do_send, do_merge, &in, &out, &error)) {
    return Err("sync with " + address + " failed: " + error);
  }
  std::ostringstream reply;
  reply << "ok\npeer=" << address << "\nrecords_in=" << in << "\nrecords_out=" << out << "\n";
  return reply.str();
}

std::string Daemon::DoFleetExec(const std::string& command) {
  // A fanned-out command runs verbatim on every host; letting it be another
  // fan-out (or a binary sync) would recurse through the fleet.
  std::string_view trimmed = command;
  while (!trimmed.empty() && trimmed.front() == ' ') {
    trimmed.remove_prefix(1);
  }
  if (trimmed.compare(0, 10, "fleet exec") == 0 || trimmed.compare(0, 10, "fleet sync") == 0) {
    return Err("refusing to fan out '" + std::string(trimmed.substr(0, 10)) + "'");
  }
  std::ostringstream out;
  out << "ok\n";
  out << "== self ==\n";
  out << HandleCommandLine(command);
  for (const PeerState& peer : peers()) {
    out << "== " << peer.address << " ==\n";
    std::string reply;
    std::string error;
    if (QueryTcp(peer.address, command, options_.io_timeout, &reply, &error)) {
      out << reply;
      if (!reply.empty() && reply.back() != '\n') {
        out << "\n";
      }
    } else {
      out << Err("unreachable: " + error);
    }
  }
  return out.str();
}

std::string Daemon::DoMetrics() {
  const DaemonStatsSnapshot s = stats();
  std::string out = "ok\n";
  obs::AppendPromCounter(&out, "dimmunix_fleet_rounds_total",
                         "Gossip rounds initiated and completed.", s.rounds_ok);
  obs::AppendPromCounter(&out, "dimmunix_fleet_rounds_failed_total",
                         "Gossip rounds initiated and failed.", s.rounds_failed);
  obs::AppendPromCounter(&out, "dimmunix_fleet_syncs_served_total",
                         "Sync rounds answered for peers.", s.syncs_served);
  obs::AppendPromCounter(&out, "dimmunix_fleet_records_in_total",
                         "Signature records received in deltas.", s.records_in);
  obs::AppendPromCounter(&out, "dimmunix_fleet_records_out_total",
                         "Signature records shipped in deltas.", s.records_out);
  obs::AppendPromCounter(&out, "dimmunix_fleet_records_new_total",
                         "Received records this daemon had never seen.", s.records_new);
  obs::AppendPromCounter(&out, "dimmunix_fleet_merge_errors_total",
                         "History file merge failures.", s.merge_errors);
  obs::AppendPromCounter(&out, "dimmunix_fleet_rejected_connections_total",
                         "Connections refused by the source allowlist.", s.rejected_conns);
  obs::AppendPromCounter(&out, "dimmunix_fleet_bad_frames_total",
                         "Digest/delta frames that failed to decode.", s.bad_frames);
  obs::AppendPromGauge(&out, "dimmunix_fleet_peers", "Configured peer count.",
                       peer_table_.size());
  obs::AppendPromGauge(&out, "dimmunix_fleet_signatures",
                       "Signatures in the watched history union.", s.signatures);
  const std::vector<AlertReport> reports = alert_reports();
  std::uint64_t active_sum = 0;
  for (const AlertReport& r : reports) {
    active_sum += static_cast<std::uint64_t>(r.active);
  }
  obs::AppendPromGauge(&out, "dimmunix_fleet_alert_reporters",
                       "Hosts with a live health-alert summary in the table.",
                       reports.size());
  obs::AppendPromGauge(&out, "dimmunix_fleet_alerts_active",
                       "Raised health rules summed across reporting hosts.", active_sum);
  obs::AppendPromHistogram(&out, "dimmunix_fleet_propagation_ms",
                           "End-to-end propagation latency of records learned from peers "
                           "(milliseconds, ages accumulated across gossip hops).",
                           propagation_ms_.Snapshot());
  return out;
}

std::string Daemon::Execute(const control::Request& request) {
  switch (request.kind) {
    case control::CommandKind::kStatus:
    case control::CommandKind::kFleetStatus:
      return DoFleetStatus();
    case control::CommandKind::kFleetPeers:
      return DoFleetPeers();
    case control::CommandKind::kFleetPush:
      return DoFleetSyncVerb(request.path, /*do_send=*/true, /*do_merge=*/false);
    case control::CommandKind::kFleetPull:
      return DoFleetSyncVerb(request.path, /*do_send=*/false, /*do_merge=*/true);
    case control::CommandKind::kFleetExec:
      return DoFleetExec(request.rest);
    case control::CommandKind::kFleetAlerts:
      return DoFleetAlerts();
    case control::CommandKind::kFleetAlertsReport:
      return DoFleetAlertsReport(request.rest);
    case control::CommandKind::kMetrics:
      return DoMetrics();
    case control::CommandKind::kTraceStart:
      recorder_.StartTracing();
      return "ok\ntracing=1\n";
    case control::CommandKind::kTraceStop:
      recorder_.StopTracing();
      return "ok\ntracing=0\n";
    case control::CommandKind::kTraceDump:
      return "ok\n" +
             obs::ChromeTraceJson(recorder_, static_cast<std::uint64_t>(::getpid()));
    case control::CommandKind::kConfig: {
      std::ostringstream out;
      out << "ok\n";
      out << "listen=" << listen_address() << "\n";
      out << "gossip_ms=" << options_.gossip_period.count() << "\n";
      out << "io_timeout_ms=" << options_.io_timeout.count() << "\n";
      for (const std::string& path : options_.history_paths) {
        out << "history=" << path << "\n";
      }
      for (std::size_t i = 0; i < peer_table_.size(); ++i) {
        out << "peer=" << peer_table_.at(i).address << "\n";
      }
      for (const std::string& allowed : options_.allow) {
        out << "allow=" << allowed << "\n";
      }
      return out.str();
    }
    case control::CommandKind::kHelp:
      return "ok\n" + DaemonHelpText();
    default:
      return Err("not supported by dimmunixd (application-runtime command; use fleet exec "
                 "or dimctl against the process socket)");
  }
}

std::string Daemon::HandleCommandLine(const std::string& line) {
  std::string error;
  const std::optional<control::Request> request = control::ParseRequest(line, &error);
  if (!request.has_value()) {
    return Err(error);
  }
  return Execute(*request);
}

}  // namespace fleet
}  // namespace dimmunix
