// Copyright (c) dimmunix-cpp authors. MIT license.
//
// PeerTable — dimmunixd's view of its configured peer set: per-peer gossip
// statistics and the reconnect backoff that keeps a dead peer from being
// hammered every period. Plain data guarded by the daemon's own mutex; the
// table itself is not thread-safe.

#ifndef DIMMUNIX_FLEET_PEER_H_
#define DIMMUNIX_FLEET_PEER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dimmunix {
namespace fleet {

struct PeerState {
  std::string address;  // "host:port"

  std::uint64_t rounds_ok = 0;
  std::uint64_t rounds_failed = 0;
  std::uint64_t records_in = 0;   // records merged from this peer
  std::uint64_t records_out = 0;  // records shipped to this peer

  int consecutive_failures = 0;
  std::string last_error;

  // Default-constructed time_point == "never".
  std::chrono::steady_clock::time_point last_ok{};
  std::chrono::steady_clock::time_point next_attempt{};

  bool ever_synced() const { return last_ok != std::chrono::steady_clock::time_point{}; }
};

class PeerTable {
 public:
  // Longest a failing peer is left alone. Gossip periods are sub-minute, so
  // a capped exponential keeps a rebooting host out of the logs without
  // delaying its re-admission by more than this.
  static constexpr std::chrono::seconds kMaxBackoff{30};

  explicit PeerTable(const std::vector<std::string>& addresses) {
    peers_.reserve(addresses.size());
    for (const std::string& address : addresses) {
      PeerState peer;
      peer.address = address;
      peers_.push_back(std::move(peer));
    }
  }

  std::size_t size() const { return peers_.size(); }
  PeerState& at(std::size_t i) { return peers_[i]; }
  const PeerState& at(std::size_t i) const { return peers_[i]; }

  // Index of `address`, or -1 (push/pull accept ad-hoc addresses too).
  int Find(const std::string& address) const {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (peers_[i].address == address) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  bool Due(std::size_t i, std::chrono::steady_clock::time_point now) const {
    return now >= peers_[i].next_attempt;
  }

  void NoteSuccess(std::size_t i, std::chrono::steady_clock::time_point now,
                   std::uint64_t in, std::uint64_t out) {
    PeerState& peer = peers_[i];
    peer.rounds_ok++;
    peer.records_in += in;
    peer.records_out += out;
    peer.consecutive_failures = 0;
    peer.last_error.clear();
    peer.last_ok = now;
    peer.next_attempt = now;  // eligible again next period
  }

  void NoteFailure(std::size_t i, std::chrono::steady_clock::time_point now,
                   std::chrono::milliseconds base_period, std::string error) {
    PeerState& peer = peers_[i];
    peer.rounds_failed++;
    peer.consecutive_failures++;
    peer.last_error = std::move(error);
    // base * 2^failures, capped. A zero base (manual-sync daemon) still backs
    // off from one second so push/pull retries don't spin.
    std::chrono::milliseconds base = std::max(base_period, std::chrono::milliseconds{1000});
    const int shift = std::min(peer.consecutive_failures, 10);
    const auto backoff = std::min<std::chrono::milliseconds>(
        base * (1 << shift), std::chrono::duration_cast<std::chrono::milliseconds>(kMaxBackoff));
    peer.next_attempt = now + backoff;
  }

 private:
  std::vector<PeerState> peers_;
};

}  // namespace fleet
}  // namespace dimmunix

#endif  // DIMMUNIX_FLEET_PEER_H_
