// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/fleet/wire.h"

#include <cstring>

#include "src/persist/format.h"

namespace dimmunix {
namespace fleet {
namespace {

// Little-endian scalar append/read, matching the on-disk v2 codec's
// conventions (src/persist/format.cc) so the wire format is as portable as
// the history file itself.
template <typename T>
void Append(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
bool Read(std::string_view bytes, std::size_t* offset, T* value) {
  if (bytes.size() - *offset < sizeof(T)) {
    return false;
  }
  std::memcpy(value, bytes.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

std::string FrameAround(FrameKind kind, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return {};
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic);
  frame.push_back(static_cast<char>(kind));
  frame.append(3, '\0');
  Append<std::uint32_t>(&frame, static_cast<std::uint32_t>(payload.size()));
  Append<std::uint32_t>(&frame, persist::Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

// Shared header + CRC validation; on kOk, *payload is the verified payload.
DecodeStatus OpenFrame(std::string_view frame, FrameKind expected_kind,
                       std::string_view* payload) {
  FrameKind kind{};
  std::uint32_t length = 0;
  const DecodeStatus status = PeekFrame(frame, &kind, &length);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  if (kind != expected_kind) {
    return DecodeStatus::kBadKind;
  }
  if (frame.size() < kFrameHeaderBytes + length) {
    return DecodeStatus::kTruncated;
  }
  std::uint32_t crc = 0;
  std::size_t offset = kFrameMagic.size() + 4;  // magic + kind + reserved
  std::uint32_t declared_length = 0;
  (void)Read(frame, &offset, &declared_length);
  (void)Read(frame, &offset, &crc);
  *payload = frame.substr(kFrameHeaderBytes, length);
  if (persist::Crc32(payload->data(), payload->size()) != crc) {
    return DecodeStatus::kBadCrc;
  }
  return DecodeStatus::kOk;
}

}  // namespace

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated frame";
    case DecodeStatus::kBadMagic:
      return "bad frame magic";
    case DecodeStatus::kBadCrc:
      return "payload CRC mismatch";
    case DecodeStatus::kBadKind:
      return "unexpected frame kind";
    case DecodeStatus::kOversize:
      return "frame exceeds hard bounds";
    case DecodeStatus::kMalformed:
      return "malformed payload";
  }
  return "unknown";
}

DecodeStatus PeekFrame(std::string_view bytes, FrameKind* kind, std::uint32_t* length) {
  if (bytes.size() < kFrameHeaderBytes) {
    return DecodeStatus::kTruncated;
  }
  if (bytes.substr(0, kFrameMagic.size()) != kFrameMagic) {
    return DecodeStatus::kBadMagic;
  }
  const std::uint8_t raw_kind = static_cast<std::uint8_t>(bytes[kFrameMagic.size()]);
  if (raw_kind != static_cast<std::uint8_t>(FrameKind::kDigest) &&
      raw_kind != static_cast<std::uint8_t>(FrameKind::kDelta)) {
    return DecodeStatus::kBadKind;
  }
  std::size_t offset = kFrameMagic.size() + 4;
  std::uint32_t len = 0;
  (void)Read(bytes, &offset, &len);
  if (len > kMaxFramePayload) {
    return DecodeStatus::kOversize;
  }
  *kind = static_cast<FrameKind>(raw_kind);
  *length = len;
  return DecodeStatus::kOk;
}

std::string EncodeDigestFrame(const std::vector<persist::DigestEntry>& digest) {
  if (digest.size() > kMaxDigestEntries) {
    return {};
  }
  std::string payload;
  payload.reserve(4 + digest.size() * 10);
  Append<std::uint32_t>(&payload, static_cast<std::uint32_t>(digest.size()));
  for (const persist::DigestEntry& entry : digest) {
    Append<std::uint64_t>(&payload, entry.hash);
    Append<std::uint16_t>(&payload, entry.knob_epoch);
  }
  return FrameAround(FrameKind::kDigest, payload);
}

DecodeStatus DecodeDigestFrame(std::string_view frame,
                               std::vector<persist::DigestEntry>* digest) {
  std::string_view payload;
  const DecodeStatus status = OpenFrame(frame, FrameKind::kDigest, &payload);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (!Read(payload, &offset, &count)) {
    return DecodeStatus::kMalformed;
  }
  if (count > kMaxDigestEntries) {
    return DecodeStatus::kOversize;
  }
  // The declared count must account for exactly the remaining bytes — a
  // count/length mismatch is a framing bug, not salvageable data.
  if (payload.size() - offset != static_cast<std::size_t>(count) * 10) {
    return DecodeStatus::kMalformed;
  }
  digest->clear();
  digest->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    persist::DigestEntry entry;
    (void)Read(payload, &offset, &entry.hash);
    (void)Read(payload, &offset, &entry.knob_epoch);
    digest->push_back(entry);
  }
  return DecodeStatus::kOk;
}

std::string EncodeDeltaFrame(const Delta& delta) {
  if (delta.image.records.size() > kMaxDigestEntries ||
      delta.ages_ms.size() != delta.image.records.size()) {
    return {};
  }
  std::string payload;
  Append<std::uint32_t>(&payload, static_cast<std::uint32_t>(delta.image.records.size()));
  for (const std::uint32_t age : delta.ages_ms) {
    Append<std::uint32_t>(&payload, age);
  }
  payload.append(persist::EncodeSnapshotV2(delta.image));
  return FrameAround(FrameKind::kDelta, payload);
}

DecodeStatus DecodeDeltaFrame(std::string_view frame, Delta* delta) {
  std::string_view payload;
  const DecodeStatus status = OpenFrame(frame, FrameKind::kDelta, &payload);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (!Read(payload, &offset, &count)) {
    return DecodeStatus::kMalformed;
  }
  if (count > kMaxDigestEntries) {
    return DecodeStatus::kOversize;
  }
  if (payload.size() - offset < static_cast<std::size_t>(count) * 4) {
    return DecodeStatus::kTruncated;
  }
  delta->ages_ms.clear();
  delta->ages_ms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t age = 0;
    (void)Read(payload, &offset, &age);
    delta->ages_ms.push_back(age);
  }
  delta->image.records.clear();
  persist::LoadResult result;
  if (!persist::DecodeSnapshotV2(payload.substr(offset), &delta->image, &result) ||
      result.records_dropped != 0 || delta->image.records.size() != count) {
    // Strict: a network frame with any dropped record is rejected whole.
    return DecodeStatus::kMalformed;
  }
  return DecodeStatus::kOk;
}

}  // namespace fleet
}  // namespace dimmunix
