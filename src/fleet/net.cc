// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/fleet/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace dimmunix {
namespace fleet {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Remaining time before `deadline`, clamped at zero.
std::chrono::microseconds Remaining(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() < 0 ? std::chrono::microseconds{0} : left;
}

bool ApplyTimeout(int fd, int option, std::chrono::steady_clock::time_point deadline) {
  const auto left = Remaining(deadline);
  if (left.count() <= 0) {
    return false;
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(left.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(left.count() % 1000000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
  return true;
}

bool ResolveIpv4(const std::string& host, in_addr* out) {
  // Numeric IPv4 only (plus the common aliases): the fleet protocol is for
  // lab networks addressed by IP; pulling in getaddrinfo would add blocking
  // DNS lookups to the gossip thread for no modeled use case.
  if (host.empty() || host == "localhost") {
    return ::inet_pton(AF_INET, "127.0.0.1", out) == 1;
  }
  return ::inet_pton(AF_INET, host.c_str(), out) == 1;
}

}  // namespace

bool ParseHostPort(std::string_view address, std::string* host, std::uint16_t* port) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == address.size()) {
    return false;
  }
  const std::string_view port_str = address.substr(colon + 1);
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(), value);
  if (ec != std::errc() || ptr != port_str.data() + port_str.size() || value > 65535) {
    return false;
  }
  *host = std::string(address.substr(0, colon));
  *port = static_cast<std::uint16_t>(value);
  return true;
}

int ListenTcp(const std::string& host, std::uint16_t port, std::uint16_t* bound_port,
              std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ResolveIpv4(host, &addr.sin_addr)) {
    *error = "cannot parse listen host '" + host + "' (numeric IPv4 required)";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    *error = Errno("bind/listen");
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  } else {
    *bound_port = port;
  }
  return fd;
}

int ConnectTcp(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ResolveIpv4(host, &addr.sin_addr)) {
    *error = "cannot parse host '" + host + "' (numeric IPv4 required)";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      *error = Errno("connect");
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0) {
      *error = ready == 0 ? "connect timed out" : Errno("poll");
      ::close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      *error = std::string("connect: ") + std::strerror(soerr);
      ::close(fd);
      return -1;
    }
  }
  // Back to blocking: the reads/writes below use SO_RCVTIMEO/SO_SNDTIMEO.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::string PeerAddress(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return {};
  }
  char buf[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) {
    return {};
  }
  return buf;
}

bool SendAllDeadline(int fd, std::string_view data,
                     std::chrono::steady_clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (!ApplyTimeout(fd, SO_SNDTIMEO, deadline)) {
      return false;
    }
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadExactDeadline(int fd, std::size_t want, std::string* out,
                       std::chrono::steady_clock::time_point deadline) {
  std::size_t got = 0;
  char buf[4096];
  while (got < want) {
    if (!ApplyTimeout(fd, SO_RCVTIMEO, deadline)) {
      return false;
    }
    const std::size_t chunk = std::min(want - got, sizeof(buf));
    const ssize_t n = ::read(fd, buf, chunk);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF mid-payload
    }
    out->append(buf, static_cast<std::size_t>(n));
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadLineDeadline(int fd, std::string* line, std::string* spill, std::size_t max_line,
                      std::chrono::steady_clock::time_point deadline) {
  std::string buffer = std::move(*spill);
  spill->clear();
  char buf[512];
  while (buffer.find('\n') == std::string::npos) {
    if (buffer.size() > max_line) {
      return false;
    }
    if (!ApplyTimeout(fd, SO_RCVTIMEO, deadline)) {
      return false;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF before the newline
    }
    buffer.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t nl = buffer.find('\n');
  *line = buffer.substr(0, nl);
  if (!line->empty() && line->back() == '\r') {
    line->pop_back();
  }
  *spill = buffer.substr(nl + 1);
  return true;
}

bool QueryTcp(const std::string& address, const std::string& line,
              std::chrono::milliseconds timeout, std::string* reply, std::string* error) {
  std::string host;
  std::uint16_t port = 0;
  if (!ParseHostPort(address, &host, &port)) {
    *error = "malformed address '" + address + "' (want host:port)";
    return false;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const int fd = ConnectTcp(host, port, timeout, error);
  if (fd < 0) {
    return false;
  }
  if (!SendAllDeadline(fd, line + "\n", deadline)) {
    *error = "send failed";
    ::close(fd);
    return false;
  }
  // Half-close: the server replies, then closes; EOF ends the reply.
  ::shutdown(fd, SHUT_WR);
  reply->clear();
  char buf[4096];
  for (;;) {
    if (!ApplyTimeout(fd, SO_RCVTIMEO, deadline)) {
      *error = "reply timed out";
      ::close(fd);
      return false;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = Errno("read");
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    reply->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

}  // namespace fleet
}  // namespace dimmunix
