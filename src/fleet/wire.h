// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Fleet wire format: the binary frames two dimmunixd daemons exchange after
// the text command line of a sync round (docs/fleet.md has the full layout).
//
// Every frame is
//
//   u32 magic   "DFRM"
//   u8  kind    1 = digest, 2 = delta
//   u8  reserved[3]
//   u32 length  payload bytes that follow the header
//   u32 crc     CRC-32 (src/persist/format.h) of the payload
//   payload...
//
// Digest payload:  u32 count, then count x { u64 signature_hash,
//                  u16 knob_epoch } — the {hash -> epoch} set of one
//                  history (persist::DigestOf order: sorted by hash).
//
// Delta payload:   u32 count, then count x u32 age_ms (milliseconds since
//                  the *sender* first saw record i — ages accumulate across
//                  gossip hops, which is what makes the receiver's
//                  fleet_propagation_ms histogram end-to-end), then the
//                  snapshot-v2 encoding (persist::EncodeSnapshotV2) of the
//                  count records being shipped.
//
// Decoders are strict: a truncated frame, a CRC mismatch, an unknown kind,
// or a count/length beyond the hard bounds below rejects the whole frame —
// unlike the tolerant on-disk loaders, a damaged network frame is simply
// re-requested by the next gossip round, so salvage buys nothing.

#ifndef DIMMUNIX_FLEET_WIRE_H_
#define DIMMUNIX_FLEET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/persist/image.h"

namespace dimmunix {
namespace fleet {

inline constexpr std::string_view kFrameMagic = "DFRM";
inline constexpr std::size_t kFrameHeaderBytes = 16;

enum class FrameKind : std::uint8_t {
  kDigest = 1,
  kDelta = 2,
};

// Hard bounds, enforced on both encode and decode. A digest entry is 10
// bytes, so the digest cap also bounds memory; the payload cap bounds the
// reserve() a hostile length field could otherwise trigger.
inline constexpr std::uint32_t kMaxDigestEntries = 1u << 20;     // 1M signatures
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;     // 64 MiB

// A delta plus its per-record propagation ages (parallel arrays:
// ages_ms[i] belongs to image.records[i]).
struct Delta {
  persist::HistoryImage image;
  std::vector<std::uint32_t> ages_ms;
};

// --- Encoding ---------------------------------------------------------------
//
// Returns the complete frame, or an empty string when the input exceeds the
// hard bounds (a peer would reject it anyway; the caller should split).

std::string EncodeDigestFrame(const std::vector<persist::DigestEntry>& digest);
std::string EncodeDeltaFrame(const Delta& delta);

// --- Decoding ---------------------------------------------------------------

enum class DecodeStatus {
  kOk,
  kTruncated,   // fewer bytes than the header or the declared length
  kBadMagic,
  kBadCrc,
  kBadKind,
  kOversize,    // length or count beyond the hard bounds
  kMalformed,   // payload structure inconsistent with its kind
};

const char* DecodeStatusName(DecodeStatus status);

// Peeks a complete frame header at the front of `bytes`. On kOk, *length is
// the payload size (so the whole frame is kFrameHeaderBytes + *length) and
// *kind its kind. Header-only checks; the CRC is verified by the decoders.
DecodeStatus PeekFrame(std::string_view bytes, FrameKind* kind, std::uint32_t* length);

// Decode one complete frame (header + payload, exactly as encoded).
DecodeStatus DecodeDigestFrame(std::string_view frame,
                               std::vector<persist::DigestEntry>* digest);
DecodeStatus DecodeDeltaFrame(std::string_view frame, Delta* delta);

}  // namespace fleet
}  // namespace dimmunix

#endif  // DIMMUNIX_FLEET_WIRE_H_
