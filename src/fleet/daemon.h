// Copyright (c) dimmunix-cpp authors. MIT license.
//
// fleet::Daemon — the engine behind the `dimmunixd` binary (tools/
// dimmunixd.cc): a signature-exchange daemon that watches one or more
// history files and keeps them converged with a configurable peer set.
//
// A daemon is deliberately *outside* every application process: it holds no
// locks the applications hold and touches histories only through the same
// crash-safe file protocol (persist::MergeIntoFile under the fcntl lock)
// any process uses. Convergence into *running* programs rides the existing
// live-resync path: an application with DIMMUNIX_RESYNC_MS set re-reads the
// shared file the daemon merged into. The lock hot path never sees a socket.
//
// Sync protocol (one TCP connection per round, initiator -> responder):
//
//   initiator: "fleet sync\n"  DigestFrame(initiator's history)
//   responder: "ok\n"          DeltaFrame(records the initiator is missing)
//                              DigestFrame(responder's history)
//   initiator:                 DeltaFrame(records the responder is missing)
//   responder: "done\n"        sent only after merging that delta, so a
//                              completed round means both files converged
//
// One round is a full push-pull anti-entropy exchange: afterwards both
// sides hold the union (knob_epoch conflicts resolved by persist::MergeInto
// — higher epoch wins). A hub topology is just configuration: point every
// spoke's --peer at the hub and leave the hub's peer list empty; spokes
// push and pull through it, no special code path.
//
// Every other command is one text line, answered with the control-plane
// reply grammar ("ok\n"/"err <reason>\n" + key=value lines) and a close —
// `dimctl --target host:port status` talks to a daemon exactly as `dimctl`
// talks to a process.
//
// Threat model: the protocol is plaintext and unauthenticated, built for
// closed lab networks. The listener binds 127.0.0.1 unless told otherwise,
// and non-loopback sources are rejected unless explicitly allow-listed.

#ifndef DIMMUNIX_FLEET_DAEMON_H_
#define DIMMUNIX_FLEET_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/control/protocol.h"
#include "src/fleet/peer.h"
#include "src/fleet/wire.h"
#include "src/obs/histogram.h"
#include "src/obs/recorder.h"
#include "src/persist/image.h"

namespace dimmunix {
namespace fleet {

struct DaemonOptions {
  // History files the daemon watches and merges into. At least one. The
  // digest a peer sees is the union across all of them; an incoming delta
  // is merged into each (proc-qualified stacks keep signatures from
  // unrelated programs distinct, so the shared union is safe).
  std::vector<std::string> history_paths;

  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  // 0 = ephemeral (tests); dimmunixd defaults 7077

  std::vector<std::string> peers;  // "host:port" each

  // Anti-entropy cadence. Zero disables the gossip thread: the daemon only
  // serves incoming syncs and explicit `fleet push|pull`.
  std::chrono::milliseconds gossip_period{1000};

  // Per-connection / per-round I/O budget.
  std::chrono::milliseconds io_timeout{5000};

  // Extra source IPs allowed to connect (numeric IPv4). Loopback is always
  // allowed unless `reject_loopback` (test hook for the rejection path).
  std::vector<std::string> allow;
  bool reject_loopback = false;

  bool trace_enabled = false;  // arm the flight-recorder rings at start
};

// One runtime's health-alert summary, pushed by the runtime's evaluator
// thread via `fleet alerts-report` and gossiped daemon-to-daemon so a hub's
// `fleet alerts` names the host that is churning. `reporter` is host:pid.
// Wire form (one line-protocol token, no spaces):
//   <reporter>;<active>;<total>;<age_ms>;<rules>
// where rules is a '+'-joined list of raised rule names, "-" when none.
struct AlertReport {
  std::string reporter;
  int active = 0;  // raised (firing + active) rules
  int total = 0;
  std::string rules;  // '+'-joined raised rule names, "" when none
  std::chrono::steady_clock::time_point last_update{};
};

// Point-in-time counters for `fleet status` / `metrics`.
struct DaemonStatsSnapshot {
  std::uint64_t rounds_ok = 0;       // initiated rounds that completed
  std::uint64_t rounds_failed = 0;   // initiated rounds that did not
  std::uint64_t syncs_served = 0;    // rounds answered for a peer
  std::uint64_t records_in = 0;      // records received in deltas
  std::uint64_t records_out = 0;     // records shipped in deltas
  std::uint64_t records_new = 0;     // received records we had never seen
  std::uint64_t merge_errors = 0;    // MergeIntoFile failures
  std::uint64_t rejected_conns = 0;  // allowlist rejections
  std::uint64_t bad_frames = 0;      // undecodable digests/deltas
  std::uint64_t signatures = 0;      // union size at the last scan
  std::int64_t last_sync_age_ms = -1;  // -1 = never synced either direction
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Binds the listener and starts the accept + gossip threads. False (with
  // *error set) when the bind fails or no history path was given.
  bool Start(std::string* error);
  void Stop();

  std::uint16_t bound_port() const { return bound_port_; }
  // "host:port" actually listening (ephemeral port resolved).
  std::string listen_address() const;

  // One full sync round with `address` now, as initiator. `do_send` false =
  // pull-only (ship nothing), `do_merge` false = push-only (merge nothing);
  // both true = the gossip round. Returns false with *error set on failure;
  // records in/out counts via the out-params (may be null).
  bool SyncWith(const std::string& address, bool do_send, bool do_merge,
                std::uint64_t* records_in, std::uint64_t* records_out, std::string* error);

  // Executes one command line (everything except the binary `fleet sync`
  // path) and returns the full reply. Public for unit tests.
  std::string HandleCommandLine(const std::string& line);

  DaemonStatsSnapshot stats() const;
  std::vector<PeerState> peers() const;

  // The live alert table (stale reporters pruned), sorted by reporter.
  std::vector<AlertReport> alert_reports() const;

  // End-to-end propagation latency (ms) of records learned from peers:
  // time since the record was first seen by whichever daemon met it first,
  // accumulated across gossip hops via the per-record age in delta frames.
  obs::HistogramSnapshot propagation_ms() const { return propagation_ms_.Snapshot(); }

  obs::Recorder& recorder() { return recorder_; }

 private:
  struct SyncOutcome {
    std::uint64_t in = 0;
    std::uint64_t out = 0;
  };

  void AcceptLoop();
  void GossipLoop();
  void GossipOnce();
  void ServeConnection(int fd);
  void ServeSync(int fd, std::string* spill,
                 std::chrono::steady_clock::time_point deadline);
  bool SourceAllowed(const std::string& source) const;

  // History plumbing (sync_m_ held).
  persist::HistoryImage LoadUnion();
  Delta BuildDelta(const persist::HistoryImage& mine,
                   const std::vector<persist::DigestEntry>& theirs);
  std::uint64_t MergeDelta(const Delta& delta);

  std::string DoFleetStatus();
  std::string DoFleetPeers();
  std::string DoFleetSyncVerb(const std::string& address, bool do_send, bool do_merge);
  std::string DoFleetExec(const std::string& command);
  std::string DoFleetAlerts();
  std::string DoFleetAlertsReport(const std::string& records);
  std::string DoMetrics();
  std::string Execute(const control::Request& request);

  // Alert-table plumbing. Ingest parses space-separated wire records and
  // keeps the freshest entry per reporter; gossip forwards the table so
  // summaries reach the hub even from spokes it never dials directly.
  std::size_t IngestAlertRecords(const std::string& records);
  void PruneAlertsLocked(std::chrono::steady_clock::time_point now);
  std::string BuildAlertRecords();
  void PushAlertsToPeers(const std::vector<std::string>& addresses);

  const DaemonOptions options_;
  obs::Recorder recorder_;
  obs::Histogram propagation_ms_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;
  bool running_ = false;

  std::thread accept_thread_;
  std::thread gossip_thread_;
  std::mutex gossip_m_;  // guards stop_ for the gossip wait
  std::condition_variable gossip_cv_;
  bool stop_ = false;

  // Serializes sync rounds (initiated, served, and push/pull verbs): each
  // round is load -> diff -> merge over the same files. The responder path
  // only try-locks — two daemons initiating at each other simultaneously
  // must not deadlock across the network, so one side answers "err busy"
  // and that round retries next period.
  std::mutex sync_m_;

  mutable std::mutex state_m_;  // stats_, peer table, first_seen_, alert_table_
  DaemonStatsSnapshot stats_;
  PeerTable peer_table_;
  // reporter -> freshest alert summary; entries expire after kAlertTtl.
  std::unordered_map<std::string, AlertReport> alert_table_;
  std::chrono::steady_clock::time_point last_sync_{};
  // signature hash -> when this daemon first learned of the record; feeds
  // the age field of outgoing deltas and the propagation histogram.
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point> first_seen_;
};

}  // namespace fleet
}  // namespace dimmunix

#endif  // DIMMUNIX_FLEET_DAEMON_H_
