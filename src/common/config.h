// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Runtime configuration for the Dimmunix engine. Every tunable named in the
// paper is represented here with the paper's default:
//   - τ (monitor wakeup period, §5.2)            -> monitor_period
//   - fixed matching depth 4 (§5.5)              -> default_match_depth
//   - NA = 20 calibration avoidances per depth   -> calibration_na
//   - NT = 10^4 recalibration threshold          -> calibration_nt
//   - weak vs. strong immunity (§5.4)            -> immunity
//   - 200 msec yield upper bound (§5.7)          -> yield_timeout
//
// Config can be populated programmatically or from DIMMUNIX_* environment
// variables (used by the LD_PRELOAD shim, where no code runs before main).

#ifndef DIMMUNIX_COMMON_CONFIG_H_
#define DIMMUNIX_COMMON_CONFIG_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace dimmunix {

// §5.4: weak immunity breaks induced starvation and continues; strong
// immunity requests a program restart on starvation, guaranteeing no pattern
// in history ever reoccurs.
enum class ImmunityMode { kWeak, kStrong };

// What the monitor does when it finds a *deadlock* cycle (recovery is
// orthogonal to Dimmunix, §3; these hooks exist so tests and the trial
// harness can observe/recover).
enum class DeadlockAction {
  kReport,       // save signature, invoke hook, leave threads deadlocked
  kBreakVictim,  // additionally cancel one victim's pending acquisition
};

// Staged-disable knobs for the Figure 8 overhead breakdown.
enum class EngineStage {
  kInstrumentationOnly,  // intercept lock ops, emit events, never consult history
  kDataStructures,       // + maintain Allowed sets / lock map, never yield
  kFull,                 // + avoidance (production behavior)
};

struct Config {
  // Master switch: false turns every engine entry point into an immediate
  // return (used as the "uninstrumented baseline" in app-level benchmarks).
  bool enabled = true;

  // --- Monitor -------------------------------------------------------------
  std::chrono::milliseconds monitor_period{100};  // τ
  bool start_monitor = true;                      // false: tests drive the monitor manually

  // --- Matching / calibration ----------------------------------------------
  int default_match_depth = 4;    // fixed depth when calibration is off
  int max_match_depth = 10;       // D: deepest suffix ever compared
  bool calibration_enabled = false;
  int calibration_na = 20;        // NA: avoidances per depth rung
  int calibration_nt = 10000;     // NT: avoidances before recalibration

  // --- Avoidance -----------------------------------------------------------
  ImmunityMode immunity = ImmunityMode::kWeak;
  DeadlockAction deadlock_action = DeadlockAction::kReport;
  EngineStage stage = EngineStage::kFull;
  std::chrono::milliseconds yield_timeout{200};  // §5.7 upper bound on a yield
  // After this many timed-out yields a signature is considered "too risky to
  // avoid" and is automatically disabled (§5.7). <= 0 disables the feature.
  int auto_disable_aborts = 64;
  // Table 1's middle configuration: run full instrumentation + detection but
  // ignore YIELD decisions (never actually pause threads).
  bool ignore_yield_decisions = false;
  // Guard the engine's consistent-view (stop-the-stripes) entry with the
  // generalized Peterson filter lock (§5.6) instead of a TAS spin lock. The
  // striped per-shard locks are always TAS spin locks.
  bool use_peterson_guard = false;
  // Maximum threads that may simultaneously run through the engine when the
  // Peterson guard is selected (slot count of the filter lock).
  int peterson_slots = 64;
  // Number of stripes the engine shards its owner map and Allowed sets
  // across (rounded up to a power of two). 0 = auto: 2*nproc rounded up to
  // a power of two. 1 reproduces the pre-striping single-guard engine.
  int engine_stripes = 0;
  // Decide cover matches from per-stripe snapshots (live-tuple counters +
  // Allowed-slot copies taken one stripe lock at a time) instead of the
  // stop-the-stripes epoch. The epoch survives as the rare slow path:
  // signature install/disable rebuilds, snapshot folds, and fast-path
  // validation churn. False reproduces the pre-incremental matcher.
  bool incremental_matcher = true;
  // Upper bound on how long any stop-the-stripes epoch may be held,
  // asserted in debug builds (release builds only count epoch_hold_ns).
  // Generous by design — it exists to catch reintroduced unbounded epoch
  // work, not scheduler noise or sanitizer slowdowns.
  std::chrono::milliseconds epoch_hold_bound{1000};

  // --- History -------------------------------------------------------------
  std::string history_path;       // empty = in-memory only
  bool load_history_on_init = true;
  bool save_history_on_update = true;
  // Journal records appended (by this process) before the HistoryStore
  // compacts them into a fresh v2 snapshot. <= 0 compacts on every delta.
  int journal_threshold = 64;
  // fsync(2) every journal append. Off by default: the append is already a
  // single write(2), so a process crash can tear at most the final record;
  // fsync additionally covers kernel/power loss at a latency cost (still
  // off the application's hot path — only the store thread pays it).
  bool journal_fsync = false;
  // > 0: the store periodically load-merges the shared history file even
  // without local changes, consuming signatures and operator actions from
  // other processes sharing DIMMUNIX_HISTORY. 0 disables resync.
  std::chrono::milliseconds history_resync_period{0};

  // --- FP probes (§5.5 retrospective analysis) ------------------------------
  std::chrono::milliseconds fp_probe_window{50};
  int fp_probe_max_ops = 64;

  // --- Cross-process immunity (src/ipc) --------------------------------------
  // Non-empty: mmap this shared-memory arena file and participate in
  // cross-process deadlock immunity — global locks (PTHREAD_PROCESS_SHARED
  // mutexes/rwlocks, flock/fcntl file locks) publish their wait/hold edges
  // there, and a bridge thread folds the other participants' edges into the
  // local RAG. Empty = single-process behavior, zero overhead.
  std::string ipc_path;
  // How often the bridge mirrors foreign edges (and heartbeats).
  std::chrono::milliseconds ipc_bridge_period{25};
  // How long a batched (deferred) edge publication may sit in the pending
  // op-log before the bridge drains it to the arena. 0 = publish eagerly on
  // every transition (protocol-v1 behavior, higher per-op cost). Contention
  // flushes immediately regardless — this bound only applies to edges no
  // local thread is blocked behind. See docs/ipc-arena.md.
  std::chrono::microseconds ipc_flush_period{2000};

  // --- Control plane ---------------------------------------------------------
  // Non-empty: the runtime listens on this UNIX-domain socket for `dimctl`
  // commands (status/history/disable/reload/...). Empty = no control server.
  std::string control_socket_path;

  // Non-empty ("host:port"): the dimmunixd daemon this process is attached
  // to. `fleet *` control commands received over the UDS socket are proxied
  // to it over TCP, and `status` gains a fleet= summary line. The daemon is
  // a separate process; this setting never adds network I/O to lock paths.
  std::string fleet_daemon;

  // --- Observability (src/obs) -----------------------------------------------
  // Arm the flight recorder at startup: per-thread trace rings record engine
  // events (acquires, yields, epochs, monitor/bridge/store activity) from
  // the first lock operation. Also toggleable live via `dimctl trace
  // start|stop`. Off = one relaxed load + branch per instrumentation site.
  bool trace_enabled = false;
  // Events per per-thread trace ring (rounded up to a power of two, 32
  // bytes each). Full rings overwrite their oldest events — flight-recorder
  // semantics; the dropped count is reported in dumps.
  int trace_ring_size = 8192;
  // Non-empty: dump the recorded trace as Chrome trace_event JSON to this
  // path at process exit / runtime destruction ("%p" expands to the pid, so
  // fleets sharing the setting write one file per process).
  std::string trace_dump_path;
  // Always-on latency histograms (acquire latency, yield duration, epoch
  // hold) behind `dimctl metrics` / `dimctl histo`. False removes the two
  // clock reads per acquisition they cost.
  bool metrics_enabled = true;

  // --- Health rules / incident forensics (src/obs) ---------------------------
  // Periodic self-diagnosis: an evaluator thread ticks the HealthEngine,
  // deriving typed alerts (firing -> active -> resolved hysteresis) from the
  // engine/bridge/store counters. Zero lock-path cost: it only reads the
  // existing stats snapshots.
  bool health_enabled = true;
  // Evaluator cadence. 0 = tick on the monitor cadence (τ).
  std::chrono::milliseconds health_period{0};
  // Rule thresholds (see docs/observability.md for each rule's signal).
  double health_retry_ratio = 0.5;        // match fast-path retries per request
  double health_epoch_stall_pct = 5.0;    // % of wall time stalled entering epochs
  int health_ipc_backlog = 256;           // IPC pending-op log depth
  long health_ipc_flush_p99_us = 10000;   // IPC pending-log drain p99 (us)
  double health_arena_pct = 80.0;         // arena slot/edge utilization %
  double health_ring_drops_per_s = 100.0; // trace events dropped per second
  int health_store_queue = 64;            // history store writer queue depth
  double health_resync_stale_x = 3.0;     // resync age / resync period
  int health_fire_ticks = 2;              // breaches before firing -> active
  int health_resolve_ticks = 2;           // clears before active -> resolved
  // Non-empty: when the monitor detects a cycle, avoids one, or breaks a
  // starvation, write a structured JSON incident bundle (signature, RAG
  // snapshot, victim's recent trace events, histogram percentiles, active
  // alerts) into this directory. Empty = forensics off, zero overhead.
  std::string incident_dir;
  int incident_max = 16;  // bounded file ring; oldest bundles evicted
  // Minimum spacing between bundles (an avoidance storm must not turn the
  // incident directory into a write amplifier).
  std::chrono::milliseconds incident_min_period{1000};

  // Reads DIMMUNIX_* environment variables over the current values:
  //   DIMMUNIX_HISTORY, DIMMUNIX_TAU_MS, DIMMUNIX_DEPTH, DIMMUNIX_MAX_DEPTH,
  //   DIMMUNIX_IMMUNITY (weak|strong), DIMMUNIX_CALIBRATION (0|1),
  //   DIMMUNIX_YIELD_TIMEOUT_MS, DIMMUNIX_IGNORE_YIELDS (0|1),
  //   DIMMUNIX_STAGE (instr|data|full), DIMMUNIX_STRIPES (0 = auto),
  //   DIMMUNIX_INCREMENTAL_MATCH (0|1, default 1),
  //   DIMMUNIX_EPOCH_BOUND_MS (debug-asserted epoch hold bound),
  //   DIMMUNIX_CONTROL (control-socket path, e.g. /tmp/app.dimmunix.sock),
  //   DIMMUNIX_FLEET (host:port of the attached dimmunixd daemon),
  //   DIMMUNIX_JOURNAL_THRESHOLD, DIMMUNIX_JOURNAL_FSYNC (0|1),
  //   DIMMUNIX_RESYNC_MS (0 = off),
  //   DIMMUNIX_IPC (arena path), DIMMUNIX_IPC_BRIDGE_MS,
  //   DIMMUNIX_IPC_FLUSH_US (0 = eager publication),
  //   DIMMUNIX_ID_CACHE (per-thread global-ID cache entries, 0 = off —
  //   read by src/ipc/global_id.cc),
  //   DIMMUNIX_TRACE (0|1), DIMMUNIX_TRACE_RING (events per thread),
  //   DIMMUNIX_TRACE_DUMP (Chrome-JSON dump path, %p -> pid),
  //   DIMMUNIX_METRICS (0|1, default 1),
  //   DIMMUNIX_HEALTH (0|1, default 1), DIMMUNIX_HEALTH_MS (0 = τ),
  //   DIMMUNIX_HEALTH_RETRY_RATIO, DIMMUNIX_HEALTH_EPOCH_STALL_PCT,
  //   DIMMUNIX_HEALTH_IPC_BACKLOG, DIMMUNIX_HEALTH_IPC_FLUSH_P99_US,
  //   DIMMUNIX_HEALTH_ARENA_PCT, DIMMUNIX_HEALTH_RING_DROPS,
  //   DIMMUNIX_HEALTH_STORE_QUEUE, DIMMUNIX_HEALTH_RESYNC_STALE_X,
  //   DIMMUNIX_HEALTH_FIRE_TICKS, DIMMUNIX_HEALTH_RESOLVE_TICKS,
  //   DIMMUNIX_INCIDENT_DIR (incident-bundle directory, empty = off),
  //   DIMMUNIX_INCIDENT_MAX, DIMMUNIX_INCIDENT_MIN_MS,
  //   DIMMUNIX_PROC_TAG (process identity for proc-qualified signatures;
  //   defaults to the executable path — read by src/ipc/global_id.cc).
  static Config FromEnvironment();
  static Config FromEnvironment(Config base);
};

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_CONFIG_H_
