// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Generalized n-thread Peterson mutual exclusion (the "filter lock").
//
// Dimmunix §5.6: "The request and release methods are the only ones that
// need to both consult and update the shared Allowed set. To do so safely
// without using locks, we use a variation of Peterson's algorithm for mutual
// exclusion generalized to n threads."
//
// We reproduce that substrate faithfully: a filter lock over a fixed number
// of slots, where each participating thread owns one slot. The avoidance
// engine can be configured (Config::use_peterson_guard) to guard its shared
// state with this lock instead of a TAS spin lock; both are exercised by the
// test suite. The filter lock takes O(n) levels per acquisition, which is
// why it is not the default on modern hardware, but it uses only loads and
// stores with seq_cst fences — no RMW instructions.

#ifndef DIMMUNIX_COMMON_PETERSON_LOCK_H_
#define DIMMUNIX_COMMON_PETERSON_LOCK_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace dimmunix {

class PetersonLock {
 public:
  // `slots` is the maximum number of threads that may contend; slot ids must
  // be in [0, slots).
  explicit PetersonLock(std::size_t slots);

  PetersonLock(const PetersonLock&) = delete;
  PetersonLock& operator=(const PetersonLock&) = delete;

  // Enters the critical section on behalf of `slot`. Blocks (spin+yield)
  // until exclusion is achieved at every filter level.
  void Lock(std::size_t slot);

  // Leaves the critical section.
  void Unlock(std::size_t slot);

  std::size_t slots() const { return n_; }

 private:
  // level_[i] = highest filter level thread i has entered (-1 = not trying).
  // victim_[l] = the most recent thread to enter level l (it must wait while
  // any other thread is at level >= l).
  std::size_t n_;
  std::unique_ptr<std::atomic<int>[]> level_;
  std::unique_ptr<std::atomic<int>[]> victim_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_PETERSON_LOCK_H_
