// Copyright (c) dimmunix-cpp authors. MIT license.
//
// A tiny test-and-test-and-set spin lock used to guard the short critical
// sections of the avoidance path (Allowed sets, lock-owner map). Dimmunix's
// avoidance code runs on every lock()/unlock() of the host program, so the
// guard must be cheap and never itself call into instrumented
// synchronization (which would recurse into the engine).

#ifndef DIMMUNIX_COMMON_SPIN_LOCK_H_
#define DIMMUNIX_COMMON_SPIN_LOCK_H_

#include <atomic>
#include <thread>

namespace dimmunix {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    int spins = 0;
    for (;;) {
      if (!flag_.test_and_set(std::memory_order_acquire)) {
        return;
      }
      // Test loop: wait until the lock looks free before retrying the RMW,
      // to avoid cache-line ping-pong.
      while (flag_.test(std::memory_order_relaxed)) {
        if (++spins >= kSpinsBeforeYield) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

  void Unlock() { flag_.clear(std::memory_order_release); }

  // Allows use with std::lock_guard / std::unique_lock.
  void lock() { Lock(); }
  bool try_lock() { return TryLock(); }
  void unlock() { Unlock(); }

 private:
  // On a single-core machine spinning is pure waste; yield early.
  static constexpr int kSpinsBeforeYield = 64;

  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_SPIN_LOCK_H_
