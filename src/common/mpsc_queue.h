// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Unbounded lock-free multi-producer single-consumer queue.
//
// This is the "async event queue" of Figure 1: every instrumented lock
// operation enqueues an event from an application thread (producer) and the
// monitor thread periodically drains the queue (single consumer). The
// algorithm is the classic Vyukov intrusive MPSC queue adapted to own its
// nodes: producers only ever touch the head with one atomic exchange, so an
// enqueue is wait-free for practical purposes; the consumer pops in FIFO
// order.
//
// Ordering guarantee (required by §5.2): events enqueued by the same thread
// appear in program order, and the exchange/acquire pairing makes an event
// visible to the consumer together with everything that happened-before its
// enqueue. In particular a `release` of lock L enqueued by thread A is
// drained before the `acquired` of L enqueued by thread B, because B's
// acquisition of L happens-after A's release of L.

#ifndef DIMMUNIX_COMMON_MPSC_QUEUE_H_
#define DIMMUNIX_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/spin_lock.h"

namespace dimmunix {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Drain any remaining nodes, then the stub and the free cache.
    while (Pop().has_value()) {
    }
    delete tail_;
    for (Node* node : free_) {
      delete node;
    }
  }

  // Producer side. Thread-safe, callable concurrently from any thread.
  void Push(T value) {
    Node* node = AllocNode(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    // Between the exchange and this store the queue is momentarily
    // "disconnected"; the consumer observes next == nullptr and treats the
    // queue as empty, which is safe (the element becomes visible on the next
    // drain).
    prev->next.store(node, std::memory_order_release);
  }

  // Consumer side. Only one thread may call Pop/Empty.
  std::optional<T> Pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return std::nullopt;
    }
    T value = std::move(next->value);
    tail_ = next;
    RecycleNode(tail);
    return value;
  }

  // Consumer side: true if a subsequent Pop() would (currently) return an
  // element.
  bool Empty() const { return tail_->next.load(std::memory_order_acquire) == nullptr; }

  // Approximate number of elements ever pushed; used only for stats.
  std::size_t ApproxPushed() const { return pushed_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  // Node recycling. The steady state of the instrumented hot path is a
  // producer thread allocating a node the consumer frees 100 ms later on
  // another core — the classic cross-thread malloc pathology (nodes never
  // return to the producer's allocator cache, and every node arrives
  // cache-cold). The free cache short-circuits that loop: the consumer
  // parks retired nodes here and producers grab them back. Both sides only
  // ever try_lock — under contention they fall back to plain new/delete, so
  // the cache can never serialize producers.
  static constexpr std::size_t kFreeCacheCap = 1024;

  Node* AllocNode(T&& value) {
    Node* node = nullptr;
    if (free_lock_.TryLock()) {
      if (!free_.empty()) {
        node = free_.back();
        free_.pop_back();
      }
      free_lock_.Unlock();
    }
    if (node == nullptr) {
      return new Node(std::move(value));
    }
    node->value = std::move(value);
    node->next.store(nullptr, std::memory_order_relaxed);
    return node;
  }

  void RecycleNode(Node* node) {
    if (free_lock_.TryLock()) {
      if (free_.size() < kFreeCacheCap) {
        free_.push_back(node);
        free_lock_.Unlock();
        return;
      }
      free_lock_.Unlock();
    }
    delete node;
  }

  std::atomic<Node*> head_;  // producers push here
  Node* tail_;               // consumer pops here (dummy/stub node)
  std::atomic<std::size_t> pushed_{0};
  SpinLock free_lock_;       // guards free_; never held while blocked
  std::vector<Node*> free_;  // retired nodes awaiting reuse
};

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_MPSC_QUEUE_H_
