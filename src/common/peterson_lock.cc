// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/peterson_lock.h"

#include <cassert>
#include <thread>

namespace dimmunix {

PetersonLock::PetersonLock(std::size_t slots)
    : n_(slots),
      level_(std::make_unique<std::atomic<int>[]>(slots)),
      victim_(std::make_unique<std::atomic<int>[]>(slots)) {
  for (std::size_t i = 0; i < n_; ++i) {
    level_[i].store(-1, std::memory_order_relaxed);
    victim_[i].store(-1, std::memory_order_relaxed);
  }
}

void PetersonLock::Lock(std::size_t slot) {
  assert(slot < n_);
  const int me = static_cast<int>(slot);
  for (std::size_t l = 0; l < n_ - 1; ++l) {
    level_[slot].store(static_cast<int>(l), std::memory_order_seq_cst);
    victim_[l].store(me, std::memory_order_seq_cst);
    // Wait while some other thread is at my level or higher and I am the
    // victim of this level.
    int spins = 0;
    for (;;) {
      if (victim_[l].load(std::memory_order_seq_cst) != me) {
        break;
      }
      bool other_at_level = false;
      for (std::size_t k = 0; k < n_; ++k) {
        if (k != slot && level_[k].load(std::memory_order_seq_cst) >= static_cast<int>(l)) {
          other_at_level = true;
          break;
        }
      }
      if (!other_at_level) {
        break;
      }
      if (++spins >= 16) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
}

void PetersonLock::Unlock(std::size_t slot) {
  assert(slot < n_);
  level_[slot].store(-1, std::memory_order_seq_cst);
}

}  // namespace dimmunix
