// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Minimal leveled logger. Dimmunix runs inside arbitrary host processes, so
// the logger writes to stderr only, never allocates at static-init time, and
// is gated by DIMMUNIX_LOG (error|warn|info|debug, default warn).

#ifndef DIMMUNIX_COMMON_LOGGING_H_
#define DIMMUNIX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dimmunix {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Currently enabled level (read once from the environment).
LogLevel GlobalLogLevel();

// True if `level` messages should be emitted.
bool LogEnabled(LogLevel level);

// Writes one formatted line ("dimmunix <LEVEL> <msg>\n") to stderr.
void LogLine(LogLevel level, const std::string& msg);

namespace log_internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define DIMMUNIX_LOG(level)                                  \
  if (!::dimmunix::LogEnabled(::dimmunix::LogLevel::level)) { \
  } else                                                     \
    ::dimmunix::log_internal::LogMessage(::dimmunix::LogLevel::level).stream()

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_LOGGING_H_
