// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/config.h"

#include <cstdlib>
#include <string_view>

namespace dimmunix {
namespace {

const char* Getenv(const char* name) { return std::getenv(name); }

bool EnvBool(const char* name, bool fallback) {
  const char* v = Getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  std::string_view s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

long EnvLong(const char* name, long fallback) {
  const char* v = Getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v) {
    return fallback;
  }
  return parsed;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = Getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) {
    return fallback;
  }
  return parsed;
}

}  // namespace

Config Config::FromEnvironment() { return FromEnvironment(Config{}); }

Config Config::FromEnvironment(Config base) {
  if (const char* h = Getenv("DIMMUNIX_HISTORY"); h != nullptr && *h != '\0') {
    base.history_path = h;
  }
  base.monitor_period =
      std::chrono::milliseconds(EnvLong("DIMMUNIX_TAU_MS", base.monitor_period.count()));
  base.default_match_depth =
      static_cast<int>(EnvLong("DIMMUNIX_DEPTH", base.default_match_depth));
  base.max_match_depth = static_cast<int>(EnvLong("DIMMUNIX_MAX_DEPTH", base.max_match_depth));
  base.calibration_enabled = EnvBool("DIMMUNIX_CALIBRATION", base.calibration_enabled);
  base.yield_timeout =
      std::chrono::milliseconds(EnvLong("DIMMUNIX_YIELD_TIMEOUT_MS", base.yield_timeout.count()));
  base.ignore_yield_decisions = EnvBool("DIMMUNIX_IGNORE_YIELDS", base.ignore_yield_decisions);
  base.engine_stripes = static_cast<int>(EnvLong("DIMMUNIX_STRIPES", base.engine_stripes));
  base.incremental_matcher = EnvBool("DIMMUNIX_INCREMENTAL_MATCH", base.incremental_matcher);
  base.epoch_hold_bound =
      std::chrono::milliseconds(EnvLong("DIMMUNIX_EPOCH_BOUND_MS", base.epoch_hold_bound.count()));
  base.journal_threshold =
      static_cast<int>(EnvLong("DIMMUNIX_JOURNAL_THRESHOLD", base.journal_threshold));
  base.journal_fsync = EnvBool("DIMMUNIX_JOURNAL_FSYNC", base.journal_fsync);
  base.history_resync_period = std::chrono::milliseconds(
      EnvLong("DIMMUNIX_RESYNC_MS", base.history_resync_period.count()));
  if (const char* ipc = Getenv("DIMMUNIX_IPC"); ipc != nullptr && *ipc != '\0') {
    base.ipc_path = ipc;
  }
  base.ipc_bridge_period = std::chrono::milliseconds(
      EnvLong("DIMMUNIX_IPC_BRIDGE_MS", base.ipc_bridge_period.count()));
  base.ipc_flush_period = std::chrono::microseconds(
      EnvLong("DIMMUNIX_IPC_FLUSH_US", base.ipc_flush_period.count()));
  if (const char* m = Getenv("DIMMUNIX_IMMUNITY"); m != nullptr) {
    std::string_view s(m);
    if (s == "strong") {
      base.immunity = ImmunityMode::kStrong;
    } else if (s == "weak") {
      base.immunity = ImmunityMode::kWeak;
    }
  }
  if (const char* c = Getenv("DIMMUNIX_CONTROL"); c != nullptr && *c != '\0') {
    base.control_socket_path = c;
  }
  if (const char* f = Getenv("DIMMUNIX_FLEET"); f != nullptr && *f != '\0') {
    base.fleet_daemon = f;
  }
  base.trace_enabled = EnvBool("DIMMUNIX_TRACE", base.trace_enabled);
  base.trace_ring_size = static_cast<int>(EnvLong("DIMMUNIX_TRACE_RING", base.trace_ring_size));
  if (const char* td = Getenv("DIMMUNIX_TRACE_DUMP"); td != nullptr && *td != '\0') {
    base.trace_dump_path = td;
  }
  base.metrics_enabled = EnvBool("DIMMUNIX_METRICS", base.metrics_enabled);
  base.health_enabled = EnvBool("DIMMUNIX_HEALTH", base.health_enabled);
  base.health_period =
      std::chrono::milliseconds(EnvLong("DIMMUNIX_HEALTH_MS", base.health_period.count()));
  base.health_retry_ratio = EnvDouble("DIMMUNIX_HEALTH_RETRY_RATIO", base.health_retry_ratio);
  base.health_epoch_stall_pct =
      EnvDouble("DIMMUNIX_HEALTH_EPOCH_STALL_PCT", base.health_epoch_stall_pct);
  base.health_ipc_backlog =
      static_cast<int>(EnvLong("DIMMUNIX_HEALTH_IPC_BACKLOG", base.health_ipc_backlog));
  base.health_ipc_flush_p99_us =
      EnvLong("DIMMUNIX_HEALTH_IPC_FLUSH_P99_US", base.health_ipc_flush_p99_us);
  base.health_arena_pct = EnvDouble("DIMMUNIX_HEALTH_ARENA_PCT", base.health_arena_pct);
  base.health_ring_drops_per_s =
      EnvDouble("DIMMUNIX_HEALTH_RING_DROPS", base.health_ring_drops_per_s);
  base.health_store_queue =
      static_cast<int>(EnvLong("DIMMUNIX_HEALTH_STORE_QUEUE", base.health_store_queue));
  base.health_resync_stale_x =
      EnvDouble("DIMMUNIX_HEALTH_RESYNC_STALE_X", base.health_resync_stale_x);
  base.health_fire_ticks =
      static_cast<int>(EnvLong("DIMMUNIX_HEALTH_FIRE_TICKS", base.health_fire_ticks));
  base.health_resolve_ticks =
      static_cast<int>(EnvLong("DIMMUNIX_HEALTH_RESOLVE_TICKS", base.health_resolve_ticks));
  if (const char* inc = Getenv("DIMMUNIX_INCIDENT_DIR"); inc != nullptr && *inc != '\0') {
    base.incident_dir = inc;
  }
  base.incident_max = static_cast<int>(EnvLong("DIMMUNIX_INCIDENT_MAX", base.incident_max));
  base.incident_min_period = std::chrono::milliseconds(
      EnvLong("DIMMUNIX_INCIDENT_MIN_MS", base.incident_min_period.count()));
  if (const char* st = Getenv("DIMMUNIX_STAGE"); st != nullptr) {
    std::string_view s(st);
    if (s == "instr") {
      base.stage = EngineStage::kInstrumentationOnly;
    } else if (s == "data") {
      base.stage = EngineStage::kDataStructures;
    } else if (s == "full") {
      base.stage = EngineStage::kFull;
    }
  }
  return base;
}

}  // namespace dimmunix
