// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Append-only slab with lock-free reads.
//
// The stack table and the thread registry are dense-id directories that grow
// forever and are read on every instrumented lock operation. Guarding the
// read side with the structure's write lock made those reads a global
// serialization point. AtomicSlab keeps elements in fixed-size heap blocks
// addressed through a two-level directory of atomic pointers: Get(i) is two
// acquire loads and never blocks; Append publishes the element pointer with
// a release store, so a reader that observes index i observes the fully
// constructed element.
//
// Writers must be externally serialized (callers hold their structure's
// write lock while appending); readers need no lock at any time. Elements
// have stable addresses for the slab's lifetime and are destroyed with it.

#ifndef DIMMUNIX_COMMON_ATOMIC_SLAB_H_
#define DIMMUNIX_COMMON_ATOMIC_SLAB_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <utility>

namespace dimmunix {

template <typename T>
class AtomicSlab {
 public:
  static constexpr std::size_t kBlockBits = 9;  // 512 elements per block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kMaxBlocks = 1 << 12;  // 2M elements

  AtomicSlab() = default;
  AtomicSlab(const AtomicSlab&) = delete;
  AtomicSlab& operator=(const AtomicSlab&) = delete;

  ~AtomicSlab() {
    const std::size_t n = size_.load(std::memory_order_acquire);
    for (std::size_t b = 0; b * kBlockSize < n; ++b) {
      Block* block = blocks_[b].load(std::memory_order_acquire);
      const std::size_t in_block =
          n - b * kBlockSize < kBlockSize ? n - b * kBlockSize : kBlockSize;
      for (std::size_t i = 0; i < in_block; ++i) {
        delete block->slots[i].load(std::memory_order_relaxed);
      }
      delete block;
    }
  }

  // Lock-free. Valid for i < size() as observed by this thread.
  T* Get(std::size_t i) const {
    Block* block = blocks_[i >> kBlockBits].load(std::memory_order_acquire);
    return block->slots[i & (kBlockSize - 1)].load(std::memory_order_acquire);
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  // Writer-side only (external serialization required). Constructs T from
  // `args`, publishes it at index size(), and returns {pointer, index}.
  // Aborts when the directory is exhausted — silent out-of-bounds writes
  // are not an option for a structure whose readers take no locks.
  template <typename... Args>
  std::pair<T*, std::size_t> Append(Args&&... args) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    if (i >= kMaxBlocks * kBlockSize) {
      std::abort();
    }
    Block* block = blocks_[i >> kBlockBits].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new Block();
      blocks_[i >> kBlockBits].store(block, std::memory_order_release);
    }
    T* value = new T(std::forward<Args>(args)...);
    block->slots[i & (kBlockSize - 1)].store(value, std::memory_order_release);
    size_.store(i + 1, std::memory_order_release);
    return {value, i};
  }

 private:
  struct Block {
    std::atomic<T*> slots[kBlockSize] = {};
  };

  std::atomic<std::size_t> size_{0};
  std::atomic<Block*> blocks_[kMaxBlocks] = {};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_ATOMIC_SLAB_H_
