// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Cache-line-sharded monotonic counter for hot-path statistics.
//
// A single std::atomic counter bounces its cache line between every core
// that increments it; the engine bumps several counters on every lock
// operation, so EngineStats alone used to serialize the supposedly striped
// hot path. ShardedCounter spreads increments across per-thread shards
// (padded to cache lines) and folds them on read. Increments are exact (each
// lands on exactly one shard with an atomic RMW), so folded totals lose
// nothing — tests assert acquisitions == releases to the last increment.
//
// The API mirrors the std::atomic<uint64_t> members it replaces (fetch_add /
// load / store) so existing call sites compile unchanged. load() is O(shard
// count) — fine for stats snapshots, wrong for per-operation branches.

#ifndef DIMMUNIX_COMMON_SHARDED_COUNTER_H_
#define DIMMUNIX_COMMON_SHARDED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dimmunix {

namespace sharded_counter_internal {
// Process-wide round-robin shard assignment, one slot per thread. Keyed per
// thread (not per counter) so a thread touches the same cache line for every
// counter shard index it uses.
inline std::size_t ThreadShardSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace sharded_counter_internal

template <std::size_t kShards = 32>
class ShardedCounterT {
  static_assert((kShards & (kShards - 1)) == 0, "shard count must be a power of two");

 public:
  ShardedCounterT() = default;
  ShardedCounterT(const ShardedCounterT&) = delete;
  ShardedCounterT& operator=(const ShardedCounterT&) = delete;

  void fetch_add(std::uint64_t delta,
                 std::memory_order order = std::memory_order_relaxed) {
    shards_[sharded_counter_internal::ThreadShardSlot() & (kShards - 1)].value.fetch_add(delta,
                                                                                         order);
  }

  // Folded total. Each shard only grows, so the fold is always a value the
  // counter passed through (never torn, never above the final total).
  std::uint64_t load(std::memory_order order = std::memory_order_relaxed) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
      total += shards_[i].value.load(order);
    }
    return total;
  }

  // Reset-style store, for tests that preload counters. Not atomic with
  // respect to concurrent fetch_add (callers quiesce writers first, exactly
  // as they had to with the plain atomic it replaces).
  void store(std::uint64_t value, std::memory_order order = std::memory_order_relaxed) {
    for (std::size_t i = 1; i < kShards; ++i) {
      shards_[i].value.store(0, order);
    }
    shards_[0].value.store(value, order);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

using ShardedCounter = ShardedCounterT<>;

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_SHARDED_COUNTER_H_
