// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dimmunix {
namespace {

LogLevel ParseLevel() {
  const char* v = std::getenv("DIMMUNIX_LOG");
  if (v == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(v, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(v, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(v, "debug") == 0) {
    return LogLevel::kDebug;
  }
  return LogLevel::kWarn;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() {
  static const LogLevel level = ParseLevel();
  return level;
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(GlobalLogLevel());
}

void LogLine(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "dimmunix %s %s\n", LevelName(level), msg.c_str());
}

}  // namespace dimmunix
