// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Lock striping for the avoidance hot path.
//
// The engine used to serialize every request/acquired/release under one
// global guard; StripedMap shards a keyed map across N power-of-two stripes,
// each with its own spin lock, so operations on different keys proceed in
// parallel. The rare paths that need a consistent cross-stripe view (the
// authoritative signature-instantiation search, signature-cache rebuilds,
// consistent snapshots for dimctl) take every stripe in ascending index
// order — the "stop-the-stripes" epoch.
//
// Lock-ordering invariant (also documented in README "Performance"): a
// thread holds at most ONE stripe lock at a time, except the epoch path,
// which acquires stripe 0..N-1 in ascending order and releases in reverse.
// Code running under a stripe lock must never block on another stripe or on
// the epoch.

#ifndef DIMMUNIX_COMMON_STRIPED_MAP_H_
#define DIMMUNIX_COMMON_STRIPED_MAP_H_

#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/spin_lock.h"

namespace dimmunix {

// Debug-build bound on how long any all-stripes epoch may be held. The
// incremental matcher makes epochs rare; this assert keeps them *short* by
// failing loudly when epoch-side work regresses to O(live-set) scans under
// all locks. Deliberately generous (sanitizer builds run 10-20x slower).
inline constexpr std::chrono::nanoseconds kDefaultEpochHoldBound{std::chrono::seconds(1)};

// Smallest power of two >= n (n >= 1).
inline std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// Default stripe count: 2*nproc rounded up to a power of two. More stripes
// than cores keeps the collision probability low when threads outnumber
// cores (the paper's microbenchmark runs up to 1024 threads).
inline std::size_t DefaultStripeCount() {
  const unsigned cores = std::thread::hardware_concurrency();
  return RoundUpPow2(2 * static_cast<std::size_t>(cores > 0 ? cores : 4));
}

// Cheap 64-bit mixer (splitmix64 finalizer) — stripe selection must not
// depend on low-bit patterns of pointers used as LockIds.
inline std::uint64_t MixHash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A hash map sharded over `stripes` (rounded up to a power of two)
// independently locked stripes. Values must tolerate being default
// constructed on first access (operator[] semantics).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  struct Stripe {
    SpinLock lock;
    std::unordered_map<Key, Value, Hash> map;
    // Keep stripes off each other's cache lines: the lock word and the map
    // header are the contended bytes.
    char pad[64];
  };

  explicit StripedMap(std::size_t stripes)
      : mask_(RoundUpPow2(stripes == 0 ? 1 : stripes) - 1),
        stripes_(std::make_unique<Stripe[]>(mask_ + 1)) {}

  std::size_t stripe_count() const { return mask_ + 1; }

  std::size_t StripeIndex(const Key& key) const {
    return static_cast<std::size_t>(MixHash64(static_cast<std::uint64_t>(Hash{}(key)))) & mask_;
  }

  // Runs `fn(map)` with the key's stripe lock held. `fn` receives the whole
  // stripe-local unordered_map so callers can find/insert/erase.
  template <typename Fn>
  decltype(auto) WithStripe(const Key& key, Fn&& fn) {
    Stripe& s = stripes_[StripeIndex(key)];
    std::lock_guard<SpinLock> guard(s.lock);
    return std::forward<Fn>(fn)(s.map);
  }

  // Epoch guard: locks every stripe in ascending order; releases in reverse
  // on destruction. While held, the owner may touch any stripe's map via
  // map_at() without further locking.
  class AllStripesGuard {
   public:
    explicit AllStripesGuard(StripedMap& owner) : owner_(owner) {
      for (std::size_t i = 0; i <= owner_.mask_; ++i) {
        owner_.stripes_[i].lock.Lock();
      }
#ifndef NDEBUG
      entered_ = std::chrono::steady_clock::now();
#endif
    }
    ~AllStripesGuard() {
#ifndef NDEBUG
      const auto held = std::chrono::steady_clock::now() - entered_;
      assert(held <= kDefaultEpochHoldBound &&
             "all-stripes epoch held past its bound — epoch work must stay O(1)-ish");
#endif
      for (std::size_t i = owner_.mask_ + 1; i-- > 0;) {
        owner_.stripes_[i].lock.Unlock();
      }
    }
    AllStripesGuard(const AllStripesGuard&) = delete;
    AllStripesGuard& operator=(const AllStripesGuard&) = delete;

   private:
    StripedMap& owner_;
#ifndef NDEBUG
    std::chrono::steady_clock::time_point entered_;
#endif
  };

  // Direct stripe access for AllStripesGuard holders (and tests).
  std::unordered_map<Key, Value, Hash>& map_at(std::size_t stripe) {
    return stripes_[stripe].map;
  }
  SpinLock& lock_at(std::size_t stripe) { return stripes_[stripe].lock; }

 private:
  const std::size_t mask_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_STRIPED_MAP_H_
