// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Monotonic time helpers plus the busy-wait primitive used by the §7.2.2
// microbenchmark (δin/δout are "implemented as busy loops, thus simulating
// computation done inside and outside the critical sections").

#ifndef DIMMUNIX_COMMON_CLOCK_H_
#define DIMMUNIX_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace dimmunix {

using MonoClock = std::chrono::steady_clock;
using MonoTime = MonoClock::time_point;
using Duration = MonoClock::duration;

inline MonoTime Now() { return MonoClock::now(); }

inline std::int64_t ToMicros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

inline std::int64_t ToMillis(Duration d) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
}

// Spins for approximately `micros` microseconds of wall time. Zero returns
// immediately. Used to simulate in/out-of-critical-section computation.
inline void BusySpinMicros(std::int64_t micros) {
  if (micros <= 0) {
    return;
  }
  const MonoTime deadline = Now() + std::chrono::microseconds(micros);
  while (Now() < deadline) {
    // Tight loop; intentionally no yield so the delay models computation.
  }
}

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_CLOCK_H_
