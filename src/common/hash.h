// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Small hashing helpers shared by stack interning and signature matching.

#ifndef DIMMUNIX_COMMON_HASH_H_
#define DIMMUNIX_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace dimmunix {

// 64-bit FNV-1a over an arbitrary byte range.
inline std::uint64_t Fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

// boost::hash_combine-style mixing, 64-bit variant.
inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace dimmunix

#endif  // DIMMUNIX_COMMON_HASH_H_
