// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The events exchanged between the avoidance instrumentation (producers) and
// the monitor thread (consumer) over the lock-free queue of Figure 1.
//
// The paper names request, go/allow, yield, acquired, release, plus the
// `cancel` event introduced for pthreads trylock/timedlock rollback (§6).
// We add `kAvoided` — the notification that an avoidance took place, which
// carries the data the calibration's retrospective false-positive analysis
// needs (§5.5) — and `kWake`, which tells the monitor a previously yielding
// thread resumed (so yield edges can be retired from the RAG).

#ifndef DIMMUNIX_EVENT_EVENT_H_
#define DIMMUNIX_EVENT_EVENT_H_

#include <cstdint>
#include <vector>

#include "src/stack/stack_table.h"

namespace dimmunix {

// Dense thread index assigned by the ThreadRegistry.
using ThreadId = std::int32_t;
constexpr ThreadId kInvalidThreadId = -1;

// Execution-scoped lock identity (address of the instrumented lock object or
// a synthetic id).
using LockId = std::uint64_t;
constexpr LockId kInvalidLockId = 0;

// How a lock is being requested or held. Exclusive is the pthread-mutex
// semantics the paper's protocol was written for; shared is the rwlock
// reader side. Two shared holds of the same lock never conflict, so
// shared-shared edges are ignored by cycle detection and a lock may appear
// once per shared holder in a signature instantiation.
enum class AcquireMode : std::uint8_t { kExclusive, kShared };

// One-letter tag used by the control plane and logs ("X"/"S").
inline char AcquireModeTag(AcquireMode mode) {
  return mode == AcquireMode::kShared ? 'S' : 'X';
}

enum class EventType : std::uint8_t {
  kRequest,   // thread asked for a lock (before the GO/YIELD decision)
  kAllow,     // GO: thread is allowed to block waiting for the lock
  kAcquired,  // thread now holds the lock
  kRelease,   // thread released the lock (final release for reentrant locks)
  kYield,     // thread was paused; payload lists the yield causes
  kWake,      // thread resumed from a yield (retry follows)
  kCancel,    // trylock/timedlock rollback of a prior request/allow
  kAvoided,   // avoidance bookkeeping for calibration (§5.5)
  kThreadExit,
};

// One cause of a yield: "thread `thread` holds / is allowed to wait for lock
// `lock` having call stack `stack`" — in `mode` (a shared hold of the same
// lock is a different edge than an exclusive one).
struct YieldCause {
  ThreadId thread = kInvalidThreadId;
  LockId lock = kInvalidLockId;
  StackId stack = kInvalidStackId;
  AcquireMode mode = AcquireMode::kExclusive;

  friend bool operator==(const YieldCause&, const YieldCause&) = default;
};

struct Event {
  EventType type = EventType::kRequest;
  ThreadId thread = kInvalidThreadId;
  LockId lock = kInvalidLockId;
  StackId stack = kInvalidStackId;
  AcquireMode mode = AcquireMode::kExclusive;  // request/hold mode of `lock`
  std::uint64_t seq = 0;  // global enqueue order tiebreaker (stats only)

  // kYield: the causes; kAvoided: the involved threads are cause.thread.
  std::vector<YieldCause> causes;

  // kAvoided payload: which signature was avoided, the depth the match used,
  // and the deepest depth at which the match would still have held.
  std::int32_t signature_index = -1;
  std::int32_t match_depth = 0;
  std::int32_t deepest_match_depth = 0;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_EVENT_EVENT_H_
