// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The async event queue of Figure 1: an MPSC queue of Events with a global
// sequence stamp.

#ifndef DIMMUNIX_EVENT_EVENT_QUEUE_H_
#define DIMMUNIX_EVENT_EVENT_QUEUE_H_

#include <atomic>
#include <optional>

#include "src/common/mpsc_queue.h"
#include "src/event/event.h"

namespace dimmunix {

class EventQueue {
 public:
  EventQueue() = default;

  // Producer side (any application thread).
  void Push(Event event) {
    event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    queue_.Push(std::move(event));
  }

  // Split producer protocol for staged events: the engine stamps an event at
  // emission time (so the consumer can re-sort per-thread staging buffers
  // back into global emission order) and pushes it later, when the buffer
  // flushes. A stamped-but-coalesced-away event simply leaves a hole in the
  // sequence; the consumer only relies on relative order, not density.
  std::uint64_t Stamp() { return next_seq_.fetch_add(1, std::memory_order_relaxed); }
  void PushStamped(Event event) { queue_.Push(std::move(event)); }

  // Consumer side (monitor thread only).
  std::optional<Event> Pop() { return queue_.Pop(); }
  bool Empty() const { return queue_.Empty(); }

  std::uint64_t total_pushed() const { return next_seq_.load(std::memory_order_relaxed); }

 private:
  MpscQueue<Event> queue_;
  std::atomic<std::uint64_t> next_seq_{0};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_EVENT_EVENT_QUEUE_H_
