// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Gate-lock deadlock avoidance — the comparison baseline of Figure 9.
//
// Nir-Buchbinder et al. [17] "discovers deadlocks at runtime, then wraps the
// corresponding parts of the code in one 'gate lock'; in subsequent
// executions, the gate lock must be acquired prior to entering the code
// block." Unlike Dimmunix, the technique does not use call stacks: a code
// *position* (the innermost frame of each stack in a known deadlock) is
// enough to force serialization, which is why it serializes all executions
// through those positions — "even in the case of execution patterns that do
// not lead to deadlock" (§4).
//
// Construction: each signature in the history contributes the set of
// innermost frames of its stacks; signatures whose position sets intersect
// must share one gate (their serialization requirements interact), so gates
// are the union-find components over positions. The paper observes 45 gates
// for 64 history signatures in the Figure 9 microbenchmark.

#ifndef DIMMUNIX_BASELINE_GATE_LOCK_H_
#define DIMMUNIX_BASELINE_GATE_LOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/signature/history.h"
#include "src/stack/frame.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

class GateLockAvoider {
 public:
  // Builds gates from the innermost frames of every signature in `history`.
  GateLockAvoider(const History& history, const StackTable& stacks);

  GateLockAvoider(const GateLockAvoider&) = delete;
  GateLockAvoider& operator=(const GateLockAvoider&) = delete;

  // Scoped "enter the gated code block" guard. If `position` is guarded by
  // a gate, acquires it (recursively); otherwise a no-op.
  class Guard {
   public:
    Guard(GateLockAvoider& avoider, Frame position);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    std::recursive_mutex* gate_ = nullptr;
    GateLockAvoider* avoider_ = nullptr;
  };

  std::size_t gate_count() const { return gates_.size(); }
  // Gate acquisitions that had to wait — each is a needless serialization of
  // an execution that Dimmunix's stack matching would have let run (the
  // baseline's "false positives" in the Figure 9 comparison).
  std::uint64_t contended_acquisitions() const {
    return contended_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_gated_acquisitions() const {
    return gated_.load(std::memory_order_relaxed);
  }

 private:
  friend class Guard;

  std::vector<std::unique_ptr<std::recursive_mutex>> gates_;
  std::unordered_map<Frame, std::size_t> gate_of_position_;
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> gated_{0};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_BASELINE_GATE_LOCK_H_
