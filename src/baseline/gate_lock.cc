// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/baseline/gate_lock.h"

#include <numeric>

namespace dimmunix {
namespace {

// Tiny union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

GateLockAvoider::GateLockAvoider(const History& history, const StackTable& stacks) {
  // Collect the distinct positions (innermost frames) per signature.
  std::vector<std::vector<Frame>> signature_positions;
  history.ForEach([&](int, const Signature& sig) {
    std::vector<Frame> positions;
    for (StackId id : sig.stacks) {
      const StackEntry& entry = stacks.Get(id);
      if (!entry.frames.empty()) {
        positions.push_back(entry.frames.front());
      }
    }
    if (!positions.empty()) {
      signature_positions.push_back(std::move(positions));
    }
  });

  // Dense-index the positions.
  std::unordered_map<Frame, std::size_t> index_of;
  for (const auto& positions : signature_positions) {
    for (Frame f : positions) {
      index_of.emplace(f, index_of.size());
    }
  }

  // Signatures sharing a position merge into one gate component.
  UnionFind uf(index_of.size());
  for (const auto& positions : signature_positions) {
    for (std::size_t i = 1; i < positions.size(); ++i) {
      uf.Union(index_of[positions[0]], index_of[positions[i]]);
    }
  }

  std::unordered_map<std::size_t, std::size_t> gate_of_root;
  for (const auto& [frame, idx] : index_of) {
    const std::size_t root = uf.Find(idx);
    auto it = gate_of_root.find(root);
    if (it == gate_of_root.end()) {
      it = gate_of_root.emplace(root, gates_.size()).first;
      gates_.push_back(std::make_unique<std::recursive_mutex>());
    }
    gate_of_position_.emplace(frame, it->second);
  }
}

GateLockAvoider::Guard::Guard(GateLockAvoider& avoider, Frame position) {
  auto it = avoider.gate_of_position_.find(position);
  if (it == avoider.gate_of_position_.end()) {
    return;
  }
  avoider_ = &avoider;
  gate_ = avoider.gates_[it->second].get();
  avoider.gated_.fetch_add(1, std::memory_order_relaxed);
  if (!gate_->try_lock()) {
    avoider.contended_.fetch_add(1, std::memory_order_relaxed);
    gate_->lock();
  }
}

GateLockAvoider::Guard::~Guard() {
  if (gate_ != nullptr) {
    gate_->unlock();
  }
}

}  // namespace dimmunix
