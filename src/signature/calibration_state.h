// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Per-signature matching-depth calibration (§5.5).
//
// When a signature X is created, its matching depth starts at 1 and stays
// there for the first NA avoidances of X, then moves to 2 for the next NA
// avoidances, and so on up to the maximum depth. For each depth the
// retrospective analysis (see src/core/calibrator.h) classifies avoidances
// as true or false positives. When the ladder completes, the smallest depth
// exhibiting the lowest FP rate becomes X's matching depth ("choosing the
// smallest depth gives us the most general pattern"). After NT further
// avoidances a recalibration is triggered, in case program conditions have
// changed.
//
// The speed-up from the paper is implemented too: when an avoidance (or FP)
// at depth k would also have happened at depths k+1..deepest, the counters
// of those depths are credited as well, "allowing the calibration to run
// fewer than NA iterations at the larger depths".

#ifndef DIMMUNIX_SIGNATURE_CALIBRATION_STATE_H_
#define DIMMUNIX_SIGNATURE_CALIBRATION_STATE_H_

#include <cstdint>
#include <vector>

namespace dimmunix {

class CalibrationState {
 public:
  // Default state: fixed-depth matching, ladder inactive, counters sized so
  // stray verdicts are safely absorbed.
  CalibrationState();
  CalibrationState(int max_depth, int na, int nt);

  // True while the ladder is still climbing (depth not yet chosen).
  bool calibrating() const { return calibrating_; }

  // The depth avoidance should currently match at: the ladder rung while
  // calibrating, the chosen depth afterwards.
  int current_depth() const { return current_depth_; }

  // Records one avoidance observed at the current rung `k`, which would also
  // have matched at every depth up to `deepest` (>= k). Advances the rung
  // when it has accumulated NA avoidances; completes the ladder at max
  // depth. Returns true if this call completed calibration.
  bool RecordAvoidance(int deepest);

  // Records the retrospective verdict for an avoidance taken at rung `k`
  // that would also have matched up to `deepest`: false_positive credits the
  // FP counters of k..deepest.
  void RecordVerdict(int depth, int deepest, bool false_positive);

  // Post-calibration: counts an avoidance toward the NT recalibration
  // threshold; returns true when recalibration should start (the caller then
  // calls Restart()).
  bool CountTowardRecalibration();

  void Restart();

  // FP rate per depth d (1-based); -1 when no data.
  double FpRate(int depth) const;
  std::uint32_t avoid_count(int depth) const {
    return avoid_[static_cast<std::size_t>(depth - 1)];
  }
  std::uint32_t fp_count(int depth) const { return fp_[static_cast<std::size_t>(depth - 1)]; }
  int max_depth() const { return max_depth_; }

 private:
  void ChooseDepth();

  int max_depth_ = 10;
  int na_ = 20;
  int nt_ = 10000;
  bool calibrating_ = false;
  int current_depth_ = 1;
  int avoidances_at_rung_ = 0;
  int post_calibration_avoidances_ = 0;
  std::vector<std::uint32_t> avoid_;  // per depth, 1-based at index d-1
  std::vector<std::uint32_t> fp_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SIGNATURE_CALIBRATION_STATE_H_
