// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/signature/history.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/persist/file.h"

namespace dimmunix {

History::History(StackTable* table) : table_(table) {}

int History::AddLocked(SignatureKind kind, std::vector<StackId> stacks, int match_depth,
                       bool* added) {
  std::sort(stacks.begin(), stacks.end());
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    if (signatures_[i].stacks == stacks) {
      if (added != nullptr) {
        *added = false;
      }
      return static_cast<int>(i);
    }
  }
  Signature sig;
  sig.kind = kind;
  sig.stacks = std::move(stacks);
  sig.match_depth = match_depth;
  signatures_.push_back(std::move(sig));
  version_.fetch_add(1, std::memory_order_release);
  if (added != nullptr) {
    *added = true;
  }
  return static_cast<int>(signatures_.size() - 1);
}

int History::Add(SignatureKind kind, std::vector<StackId> stacks, int match_depth, bool* added) {
  std::lock_guard<SpinLock> guard(lock_);
  return AddLocked(kind, std::move(stacks), match_depth, added);
}

std::size_t History::size() const {
  std::lock_guard<SpinLock> guard(lock_);
  return signatures_.size();
}

void History::ForEach(const std::function<void(int, const Signature&)>& fn) const {
  std::lock_guard<SpinLock> guard(lock_);
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    fn(static_cast<int>(i), signatures_[i]);
  }
}

Signature History::Get(int index) const {
  std::lock_guard<SpinLock> guard(lock_);
  return signatures_[static_cast<std::size_t>(index)];
}

void History::SetDisabled(int index, bool disabled) {
  std::lock_guard<SpinLock> guard(lock_);
  Signature& sig = signatures_[static_cast<std::size_t>(index)];
  if (sig.disabled != disabled) {
    sig.disabled = disabled;
    ++sig.knob_epoch;
    version_.fetch_add(1, std::memory_order_release);
  }
}

void History::SetMatchDepth(int index, int depth) {
  std::lock_guard<SpinLock> guard(lock_);
  Signature& sig = signatures_[static_cast<std::size_t>(index)];
  if (sig.match_depth != depth) {
    sig.match_depth = depth;
    ++sig.knob_epoch;
    version_.fetch_add(1, std::memory_order_release);
  }
}

void History::RecordAvoidance(int index) {
  std::lock_guard<SpinLock> guard(lock_);
  ++signatures_[static_cast<std::size_t>(index)].avoidance_count;
}

void History::RecordAbort(int index) {
  std::lock_guard<SpinLock> guard(lock_);
  ++signatures_[static_cast<std::size_t>(index)].abort_count;
}

void History::RecordFalsePositive(int index) {
  std::lock_guard<SpinLock> guard(lock_);
  ++signatures_[static_cast<std::size_t>(index)].fp_count;
}

void History::Mutate(int index, const std::function<void(Signature&)>& fn) {
  std::lock_guard<SpinLock> guard(lock_);
  Signature& sig = signatures_[static_cast<std::size_t>(index)];
  const bool was_disabled = sig.disabled;
  const int old_depth = sig.match_depth;
  fn(sig);
  if (sig.disabled != was_disabled || sig.match_depth != old_depth) {
    ++sig.knob_epoch;  // auto-disable / calibration depth moves count too
  }
  version_.fetch_add(1, std::memory_order_release);
}

persist::HistoryImage History::ExportImage() const {
  persist::HistoryImage image;
  std::lock_guard<SpinLock> guard(lock_);
  image.records.reserve(signatures_.size());
  for (const Signature& sig : signatures_) {
    persist::SignatureRecord rec;
    rec.kind = sig.kind == SignatureKind::kStarvation ? 1 : 0;
    rec.disabled = sig.disabled;
    rec.knob_epoch = sig.knob_epoch;
    rec.match_depth = sig.match_depth;
    rec.avoidance_count = sig.avoidance_count;
    rec.abort_count = sig.abort_count;
    rec.fp_count = sig.fp_count;
    rec.stacks.reserve(sig.stacks.size());
    for (StackId id : sig.stacks) {
      rec.stacks.push_back(table_->Get(id).frames);  // Get is lock-free
    }
    rec.Canonicalize();
    image.records.push_back(std::move(rec));
  }
  return image;
}

int History::MergeImage(const persist::HistoryImage& image, persist::MergePolicy policy) {
  int added_count = 0;
  for (const persist::SignatureRecord& rec : image.records) {
    if (rec.stacks.empty()) {
      continue;
    }
    std::vector<StackId> ids;
    ids.reserve(rec.stacks.size());
    for (const std::vector<Frame>& frames : rec.stacks) {
      ids.push_back(table_->Intern(frames));  // outside lock_: Intern has its own
    }
    // A hand-edited or foreign file may claim a depth beyond what the stack
    // table can compare at; cap it so the reported depth is the effective one.
    const int depth = std::min(std::max(1, static_cast<int>(rec.match_depth)),
                               table_->max_depth());
    const SignatureKind kind = rec.kind == 1 ? SignatureKind::kStarvation
                                             : SignatureKind::kDeadlock;
    std::lock_guard<SpinLock> guard(lock_);
    bool added = false;
    const int index = AddLocked(kind, std::move(ids), depth, &added);
    Signature& sig = signatures_[static_cast<std::size_t>(index)];
    if (added) {
      sig.disabled = rec.disabled;
      sig.knob_epoch = rec.knob_epoch;
      sig.avoidance_count = rec.avoidance_count;
      sig.abort_count = rec.abort_count;
      sig.fp_count = rec.fp_count;
      ++added_count;
      continue;
    }
    // Known signature. Counters only grow — max() never rolls back a live
    // value to a stale on-disk one.
    sig.avoidance_count = std::max(sig.avoidance_count, rec.avoidance_count);
    sig.abort_count = std::max(sig.abort_count, rec.abort_count);
    sig.fp_count = std::max(sig.fp_count, rec.fp_count);
    // Knobs: the higher knob_epoch wins outright (the copy that has seen
    // more operator actions); `policy` breaks same-epoch conflicts — §8
    // reload and vendor patches pass kPreferIncoming so a hand-edited file
    // stays authoritative.
    if (rec.knob_epoch > sig.knob_epoch) {
      sig.disabled = rec.disabled;
      sig.match_depth = depth;
      sig.knob_epoch = rec.knob_epoch;
      version_.fetch_add(1, std::memory_order_release);
    } else if (rec.knob_epoch == sig.knob_epoch &&
               policy == persist::MergePolicy::kPreferIncoming &&
               (sig.disabled != rec.disabled || sig.match_depth != depth)) {
      sig.disabled = rec.disabled;
      sig.match_depth = depth;
      version_.fetch_add(1, std::memory_order_release);
    }
  }
  return added_count;
}

bool History::Load(const std::string& path) {
  persist::HistoryImage image;
  const persist::LoadResult result = persist::LoadHistoryFile(path, &image);
  if (result.status == persist::LoadStatus::kIoError) {
    DIMMUNIX_LOG(kError) << "history: cannot read " << path << ": " << result.message;
    return false;
  }
  if (result.status == persist::LoadStatus::kNotFound) {
    return true;  // no history yet — empty immune system
  }
  if (!result.clean()) {
    DIMMUNIX_LOG(kWarn) << "history: " << path << ": " << result.records_dropped
                        << " record(s) dropped (" << result.message << ")";
  }
  const int added = MergeImage(image, persist::MergePolicy::kPreferIncoming);
  DIMMUNIX_LOG(kInfo) << "history: loaded " << added << " signature(s) from " << path
                      << " (format v" << result.format_version << ", "
                      << result.journal_records << " journal record(s))";
  return true;
}

bool History::Save(const std::string& path) const {
  // Saves can race: the monitor persists after archiving while an operator
  // disable (control thread) persists too. Serialize them here; the persist
  // layer's file lock + unique tmp names handle concurrent *processes*.
  std::lock_guard<std::mutex> save_guard(save_m_);
  std::string error;
  if (!persist::SaveHistoryFile(path, ExportImage(), &error)) {
    DIMMUNIX_LOG(kError) << "history: " << error;
    return false;
  }
  return true;
}

}  // namespace dimmunix
