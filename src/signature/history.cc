// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/signature/history.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace dimmunix {

History::History(StackTable* table) : table_(table) {}

int History::AddLocked(SignatureKind kind, std::vector<StackId> stacks, int match_depth,
                       bool* added) {
  std::sort(stacks.begin(), stacks.end());
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    if (signatures_[i].stacks == stacks) {
      if (added != nullptr) {
        *added = false;
      }
      return static_cast<int>(i);
    }
  }
  Signature sig;
  sig.kind = kind;
  sig.stacks = std::move(stacks);
  sig.match_depth = match_depth;
  signatures_.push_back(std::move(sig));
  version_.fetch_add(1, std::memory_order_release);
  if (added != nullptr) {
    *added = true;
  }
  return static_cast<int>(signatures_.size() - 1);
}

int History::Add(SignatureKind kind, std::vector<StackId> stacks, int match_depth, bool* added) {
  std::lock_guard<SpinLock> guard(lock_);
  return AddLocked(kind, std::move(stacks), match_depth, added);
}

std::size_t History::size() const {
  std::lock_guard<SpinLock> guard(lock_);
  return signatures_.size();
}

void History::ForEach(const std::function<void(int, const Signature&)>& fn) const {
  std::lock_guard<SpinLock> guard(lock_);
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    fn(static_cast<int>(i), signatures_[i]);
  }
}

Signature History::Get(int index) const {
  std::lock_guard<SpinLock> guard(lock_);
  return signatures_[static_cast<std::size_t>(index)];
}

void History::SetDisabled(int index, bool disabled) {
  std::lock_guard<SpinLock> guard(lock_);
  Signature& sig = signatures_[static_cast<std::size_t>(index)];
  if (sig.disabled != disabled) {
    sig.disabled = disabled;
    version_.fetch_add(1, std::memory_order_release);
  }
}

void History::SetMatchDepth(int index, int depth) {
  std::lock_guard<SpinLock> guard(lock_);
  Signature& sig = signatures_[static_cast<std::size_t>(index)];
  if (sig.match_depth != depth) {
    sig.match_depth = depth;
    version_.fetch_add(1, std::memory_order_release);
  }
}

void History::RecordAvoidance(int index) {
  std::lock_guard<SpinLock> guard(lock_);
  ++signatures_[static_cast<std::size_t>(index)].avoidance_count;
}

void History::RecordAbort(int index) {
  std::lock_guard<SpinLock> guard(lock_);
  ++signatures_[static_cast<std::size_t>(index)].abort_count;
}

void History::RecordFalsePositive(int index) {
  std::lock_guard<SpinLock> guard(lock_);
  ++signatures_[static_cast<std::size_t>(index)].fp_count;
}

void History::Mutate(int index, const std::function<void(Signature&)>& fn) {
  std::lock_guard<SpinLock> guard(lock_);
  fn(signatures_[static_cast<std::size_t>(index)]);
  version_.fetch_add(1, std::memory_order_release);
}

namespace {

constexpr char kHeader[] = "# dimmunix history v1";

}  // namespace

bool History::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return true;  // no history yet — empty immune system
  }
  std::string line;
  SignatureKind kind = SignatureKind::kDeadlock;
  int depth = 4;
  bool disabled = false;
  std::uint64_t avoided = 0;
  std::uint64_t aborts = 0;
  std::vector<std::vector<Frame>> pending_stacks;
  bool in_signature = false;
  int loaded = 0;

  auto flush = [&]() {
    if (pending_stacks.empty()) {
      return;
    }
    std::vector<StackId> ids;
    ids.reserve(pending_stacks.size());
    for (const auto& frames : pending_stacks) {
      ids.push_back(table_->Intern(frames));
    }
    // A hand-edited file may claim a depth beyond what the stack table can
    // ever compare at; cap it so the reported depth equals the effective one.
    depth = std::min(depth, table_->max_depth());
    std::lock_guard<SpinLock> guard(lock_);
    bool added = false;
    int index = AddLocked(kind, std::move(ids), depth, &added);
    Signature& sig = signatures_[static_cast<std::size_t>(index)];
    if (added) {
      sig.disabled = disabled;
      sig.avoidance_count = avoided;
      sig.abort_count = aborts;
      ++loaded;
    } else if (sig.disabled != disabled || sig.match_depth != depth) {
      // Reload of a known signature (§8 hot-reload, operator-edited file):
      // the file is authoritative for the operator-facing knobs — disabled
      // state and matching depth — but live counters are never rolled back
      // to the file's stale values.
      sig.disabled = disabled;
      sig.match_depth = depth;
      version_.fetch_add(1, std::memory_order_release);
    }
    pending_stacks.clear();
  };

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "sig") {
      kind = SignatureKind::kDeadlock;
      depth = 4;
      disabled = false;
      avoided = 0;
      aborts = 0;
      in_signature = true;
      std::string field;
      while (ls >> field) {
        auto eq = field.find('=');
        if (eq == std::string::npos) {
          continue;
        }
        std::string key = field.substr(0, eq);
        std::string value = field.substr(eq + 1);
        if (key == "kind") {
          kind = (value == "starvation") ? SignatureKind::kStarvation : SignatureKind::kDeadlock;
        } else if (key == "depth") {
          depth = std::max(1, std::atoi(value.c_str()));
        } else if (key == "disabled") {
          disabled = (value == "1");
        } else if (key == "avoided") {
          avoided = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "aborts") {
          aborts = std::strtoull(value.c_str(), nullptr, 10);
        }
      }
    } else if (tok == "stack" && in_signature) {
      std::vector<Frame> frames;
      std::string frame_tok;
      while (ls >> frame_tok) {
        frames.push_back(std::strtoull(frame_tok.c_str(), nullptr, 16));
      }
      if (!frames.empty()) {
        pending_stacks.push_back(std::move(frames));
      }
    } else if (tok == "end") {
      flush();
      in_signature = false;
    } else {
      DIMMUNIX_LOG(kWarn) << "history: skipping unrecognized line: " << line;
    }
  }
  flush();
  DIMMUNIX_LOG(kInfo) << "history: loaded " << loaded << " signature(s) from " << path;
  return true;
}

bool History::Save(const std::string& path) const {
  // Saves can race: the monitor persists after archiving while an operator
  // disable (control thread) persists too. Serialize the whole
  // write-tmp-then-rename sequence; a per-process tmp name additionally
  // keeps concurrent *processes* sharing one history file from interleaving.
  std::lock_guard<std::mutex> save_guard(save_m_);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      DIMMUNIX_LOG(kError) << "history: cannot write " << tmp;
      return false;
    }
    out << kHeader << "\n";
    std::lock_guard<SpinLock> guard(lock_);
    for (const Signature& sig : signatures_) {
      out << "sig kind=" << (sig.kind == SignatureKind::kStarvation ? "starvation" : "deadlock")
          << " depth=" << sig.match_depth << " disabled=" << (sig.disabled ? 1 : 0)
          << " avoided=" << sig.avoidance_count << " aborts=" << sig.abort_count << "\n";
      for (StackId id : sig.stacks) {
        out << "stack";
        const StackEntry& entry = table_->Get(id);
        for (Frame frame : entry.frames) {
          char buf[24];
          std::snprintf(buf, sizeof(buf), " %" PRIx64, frame);
          out << buf;
        }
        out << "\n";
      }
      out << "end\n";
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    DIMMUNIX_LOG(kError) << "history: rename to " << path << " failed";
    return false;
  }
  return true;
}

}  // namespace dimmunix
