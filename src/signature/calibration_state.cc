// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/signature/calibration_state.h"

#include <algorithm>

namespace dimmunix {

CalibrationState::CalibrationState()
    : calibrating_(false),
      avoid_(static_cast<std::size_t>(max_depth_), 0),
      fp_(static_cast<std::size_t>(max_depth_), 0) {}

CalibrationState::CalibrationState(int max_depth, int na, int nt)
    : max_depth_(std::max(1, max_depth)),
      na_(std::max(1, na)),
      nt_(std::max(1, nt)),
      calibrating_(true),
      avoid_(static_cast<std::size_t>(max_depth_), 0),
      fp_(static_cast<std::size_t>(max_depth_), 0) {}

bool CalibrationState::RecordAvoidance(int deepest) {
  if (!calibrating_) {
    return false;
  }
  deepest = std::clamp(deepest, current_depth_, max_depth_);
  for (int d = current_depth_; d <= deepest; ++d) {
    ++avoid_[static_cast<std::size_t>(d - 1)];
  }
  if (++avoidances_at_rung_ >= na_) {
    avoidances_at_rung_ = 0;
    // Skip rungs that already collected enough samples via the deepest-match
    // crediting — "the calibration can run fewer than NA iterations at the
    // larger depths".
    do {
      ++current_depth_;
    } while (current_depth_ <= max_depth_ &&
             avoid_[static_cast<std::size_t>(current_depth_ - 1)] >=
                 static_cast<std::uint32_t>(na_));
    if (current_depth_ > max_depth_) {
      ChooseDepth();
      return true;
    }
  }
  return false;
}

void CalibrationState::RecordVerdict(int depth, int deepest, bool false_positive) {
  if (!false_positive) {
    return;
  }
  depth = std::clamp(depth, 1, max_depth_);
  deepest = std::clamp(deepest, depth, max_depth_);
  for (int d = depth; d <= deepest; ++d) {
    ++fp_[static_cast<std::size_t>(d - 1)];
  }
}

bool CalibrationState::CountTowardRecalibration() {
  if (calibrating_) {
    return false;
  }
  if (++post_calibration_avoidances_ >= nt_) {
    return true;
  }
  return false;
}

void CalibrationState::Restart() {
  calibrating_ = true;
  current_depth_ = 1;
  avoidances_at_rung_ = 0;
  post_calibration_avoidances_ = 0;
  std::fill(avoid_.begin(), avoid_.end(), 0u);
  std::fill(fp_.begin(), fp_.end(), 0u);
}

double CalibrationState::FpRate(int depth) const {
  const std::uint32_t a = avoid_[static_cast<std::size_t>(depth - 1)];
  if (a == 0) {
    return -1.0;
  }
  return static_cast<double>(fp_[static_cast<std::size_t>(depth - 1)]) / a;
}

void CalibrationState::ChooseDepth() {
  calibrating_ = false;
  // Smallest depth with the lowest observed FP rate (FPmin can be non-zero;
  // several depths can tie — pick the smallest for generality).
  double best = 2.0;  // rates are <= 1
  int chosen = 1;
  for (int d = 1; d <= max_depth_; ++d) {
    const double rate = FpRate(d);
    if (rate < 0) {
      continue;
    }
    if (rate < best) {
      best = rate;
      chosen = d;
    }
  }
  current_depth_ = chosen;
  post_calibration_avoidances_ = 0;
}

}  // namespace dimmunix
