// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Deadlock signatures and the persistent history (§5.3, §5.4).
//
// A signature is a *multiset* of call stacks — one per thread blocked in the
// detected deadlock/starvation — plus a matching depth. Signatures contain
// no thread or lock identities ("this ensures that signatures preserve the
// generality of a deadlock pattern and are fully portable from one execution
// to the next"). Cross-process signatures (src/ipc) need no special
// representation: proc qualification is just one more frame (the process
// identity, prepended at capture time for global locks), so they flow
// through matching, persistence, and multi-process merge unchanged.
//
// The history is loaded from disk at startup, shared read-only among all
// application threads, and mutated only by the monitor thread (§5.4). Writes
// go through an internal lock so the avoidance path can take consistent
// snapshots.
//
// Persistence lives in src/persist/: histories save as the versioned binary
// v2 format (magic/CRC, interned stacks, atomic tmp+rename — see
// docs/history-format.md) and load from v2, the legacy v1 text format, or a
// crash-tolerant journal sidecar. History exchanges data with that layer via
// persist::HistoryImage (ExportImage/MergeImage below); the asynchronous
// writer around it is persist::HistoryStore.

#ifndef DIMMUNIX_SIGNATURE_HISTORY_H_
#define DIMMUNIX_SIGNATURE_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/spin_lock.h"
#include "src/persist/image.h"
#include "src/signature/calibration_state.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

enum class SignatureKind : std::uint8_t { kDeadlock, kStarvation };

struct Signature {
  SignatureKind kind = SignatureKind::kDeadlock;
  std::vector<StackId> stacks;  // sorted: a canonical multiset
  int match_depth = 4;          // suffix length used during matching (§5.5)
  bool disabled = false;        // §5.7 "allow users to disable signatures"
  // Incremented on every disabled/match_depth change; persisted, so merges
  // across processes let the most-recently-changed copy win the knobs (see
  // persist::SignatureRecord::knob_epoch).
  std::uint16_t knob_epoch = 0;
  std::uint64_t avoidance_count = 0;
  std::uint64_t abort_count = 0;  // yields aborted by the §5.7 timeout bound
  std::uint64_t fp_count = 0;     // retrospective false positives (§5.5)
  CalibrationState calibration;
};

class History {
 public:
  // `table` interns the stacks of loaded signatures; must outlive History.
  explicit History(StackTable* table);

  History(const History&) = delete;
  History& operator=(const History&) = delete;

  // Adds a signature unless an identical stack multiset is already present
  // ("duplicate signatures are disallowed"). Returns the signature index,
  // and sets *added to whether a new entry was created.
  int Add(SignatureKind kind, std::vector<StackId> stacks, int match_depth, bool* added);

  std::size_t size() const;

  // Snapshot accessors -------------------------------------------------------
  // Calls `fn(index, signature)` for every signature under the history lock.
  // `fn` must be short and must not re-enter History.
  void ForEach(const std::function<void(int, const Signature&)>& fn) const;
  Signature Get(int index) const;

  // Mutators (monitor thread / tools) ----------------------------------------
  void SetDisabled(int index, bool disabled);
  void SetMatchDepth(int index, int depth);
  void RecordAvoidance(int index);
  void RecordAbort(int index);
  void RecordFalsePositive(int index);
  // Applies `fn` to the signature under the lock (calibration updates).
  void Mutate(int index, const std::function<void(Signature&)>& fn);

  // Monotonically increases whenever the set of *active* signatures or any
  // matching depth changes; the avoidance engine compares it against its
  // signature-cache generation on the hot path, so the read is a lock-free
  // atomic load.
  std::uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // Persistence ---------------------------------------------------------------
  // Loads (merging) signatures from `path` — v2 binary, legacy v1 text, or
  // journal sidecar, auto-detected. Missing file is not an error (returns
  // true with nothing loaded). Malformed content is skipped with a warning;
  // returns false only on I/O failure of an existing file.
  bool Load(const std::string& path);
  // Atomically writes the whole history to `path` in format v2. Thread-safe:
  // concurrent saves (monitor thread vs. control-plane ops) are serialized.
  bool Save(const std::string& path) const;

  // Copies every signature into a portable image (frames, not StackIds).
  persist::HistoryImage ExportImage() const;
  // Merges an image in: new signatures are added (interning their stacks),
  // known ones take the max of each counter; `policy` decides whether the
  // image (kPreferIncoming — reload/vendor patch, §8) or the live history
  // (kPreferExisting — compaction) wins the operator knobs (disabled flag,
  // matching depth). Bumps version() on any matching-relevant change.
  // Returns the number of signatures added.
  int MergeImage(const persist::HistoryImage& image, persist::MergePolicy policy);

 private:
  int AddLocked(SignatureKind kind, std::vector<StackId> stacks, int match_depth, bool* added);

  StackTable* table_;
  mutable SpinLock lock_;
  mutable std::mutex save_m_;  // serializes Save() (file I/O stays off lock_)
  std::vector<Signature> signatures_;
  // Written under lock_; read lock-free by the engine's staleness check.
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_SIGNATURE_HISTORY_H_
