// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Deterministic call-stack annotation.
//
// The Java Dimmunix obtains call stacks from the JVM; the pthreads versions
// unwind with backtrace(). For reproducible experiments (and for programs
// built with aggressive inlining, where unwinding is lossy) this library
// additionally supports *annotated* frames: a code path marks its position
// with a RAII ScopedFrame, and the capture routine returns the thread's
// current annotation stack when it is non-empty. Tests, demo apps, and the
// microbenchmark all use annotated frames so that signatures are identical
// across runs and machines.
//
// Usage:
//   void Update(Table* x, Table* y) {
//     DIMMUNIX_FRAME();            // position = function@file:line
//     x->mu.Lock();                // stack captured inside includes it
//     ...
//   }

#ifndef DIMMUNIX_STACK_ANNOTATION_H_
#define DIMMUNIX_STACK_ANNOTATION_H_

#include <cstddef>
#include <vector>

#include "src/stack/frame.h"

namespace dimmunix {

// Per-thread annotation stack, outermost call first. Cheap to read; only the
// owning thread mutates it.
const std::vector<Frame>& ThreadAnnotationStack();

// Pushes/pops are balanced via ScopedFrame; exposed for the few places
// (thread pools) that transfer logical stacks across threads.
void PushAnnotatedFrame(Frame frame);
void PopAnnotatedFrame();

class ScopedFrame {
 public:
  explicit ScopedFrame(Frame frame) { PushAnnotatedFrame(frame); }
  explicit ScopedFrame(const std::string& name) : ScopedFrame(FrameFromName(name)) {}
  ~ScopedFrame() { PopAnnotatedFrame(); }

  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;
};

namespace stack_internal {
// Builds (once per call site) the frame for a position string; the static
// local keeps the hot path to a single branch.
inline Frame SiteFrame(const char* func, const char* file, int line) {
  std::string name(func);
  name += '@';
  // Strip directories: signatures should not depend on the build tree path.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  name += base;
  name += ':';
  name += std::to_string(line);
  return FrameFromName(name);
}
}  // namespace stack_internal

#define DIMMUNIX_FRAME()                                                              \
  static const ::dimmunix::Frame _dimx_site_frame =                                   \
      ::dimmunix::stack_internal::SiteFrame(__func__, __FILE__, __LINE__);            \
  ::dimmunix::ScopedFrame _dimx_scoped_frame { _dimx_site_frame }

// Named variant for building precise synthetic call flows in tests/benches.
#define DIMMUNIX_NAMED_FRAME(name_literal)                                            \
  static const ::dimmunix::Frame _dimx_site_frame_n =                                 \
      ::dimmunix::FrameFromName(name_literal);                                        \
  ::dimmunix::ScopedFrame _dimx_scoped_frame_n { _dimx_site_frame_n }

}  // namespace dimmunix

#endif  // DIMMUNIX_STACK_ANNOTATION_H_
