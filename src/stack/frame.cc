// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/frame.h"

#include <mutex>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/spin_lock.h"

namespace dimmunix {
namespace {

// Global frame -> name registry, for diagnostics only. Guarded by a spin
// lock; reads take the lock too (symbolization is never on the hot path).
SpinLock& RegistryLock() {
  static SpinLock lock;
  return lock;
}

std::unordered_map<Frame, std::string>& Registry() {
  static auto* map = new std::unordered_map<Frame, std::string>();
  return *map;
}

}  // namespace

Frame FrameFromName(const std::string& name) {
  Frame frame = Fnv1a64(name);
  if (frame == kInvalidFrame) {
    frame = 1;  // avoid colliding with the sentinel
  }
  std::lock_guard<SpinLock> guard(RegistryLock());
  Registry().emplace(frame, name);
  return frame;
}

Frame FrameFromModuleOffset(std::uint64_t module_hash, std::uint64_t offset) {
  Frame frame = HashCombine(module_hash, offset);
  if (frame == kInvalidFrame) {
    frame = 1;
  }
  return frame;
}

std::string FrameName(Frame frame) {
  {
    std::lock_guard<SpinLock> guard(RegistryLock());
    auto it = Registry().find(frame);
    if (it != Registry().end()) {
      return it->second;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(frame));
  return buf;
}

}  // namespace dimmunix
