// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/stack_table.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"

namespace dimmunix {

StackTable::StackTable(int max_depth) : max_depth_(std::max(1, max_depth)) {
  by_depth_.resize(static_cast<std::size_t>(max_depth_));
}

std::uint64_t StackTable::SuffixHash(const std::vector<Frame>& frames, int depth) const {
  const std::size_t n = std::min(frames.size(), static_cast<std::size_t>(depth));
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = HashCombine(h, frames[i]);
  }
  // Mix in the effective length so that a 2-frame stack does not collide
  // with a 5-frame stack sharing its top 2 frames when compared at depth 2 —
  // they *should* collide there; but at depth 5 the 2-frame stack hashes its
  // whole content, and we must not let it alias a genuinely 5-deep suffix.
  return HashCombine(h, n);
}

StackId StackTable::Intern(const std::vector<Frame>& frames) {
  const std::uint64_t full = Fnv1a64(frames.data(), frames.size() * sizeof(Frame));
  const StackEntry* created = nullptr;
  StackId result = kInvalidStackId;
  {
    std::lock_guard<SpinLock> guard(lock_);
    auto it = by_full_hash_.find(full);
    if (it != by_full_hash_.end()) {
      for (StackId id : it->second) {
        if (entries_[static_cast<std::size_t>(id)].frames == frames) {
          return id;
        }
      }
    }
    StackEntry entry;
    entry.id = static_cast<StackId>(entries_.size());
    entry.frames = frames;
    entry.full_hash = full;
    entry.depth_hash.resize(static_cast<std::size_t>(max_depth_));
    for (int d = 1; d <= max_depth_; ++d) {
      entry.depth_hash[static_cast<std::size_t>(d - 1)] = SuffixHash(frames, d);
    }
    entries_.push_back(std::move(entry));
    const StackEntry& stored = entries_.back();
    by_full_hash_[full].push_back(stored.id);
    for (int d = 1; d <= max_depth_; ++d) {
      by_depth_[static_cast<std::size_t>(d - 1)][stored.depth_hash[static_cast<std::size_t>(d - 1)]]
          .push_back(stored.id);
    }
    created = &stored;
    result = stored.id;
  }
  if (created != nullptr) {
    for (const auto& observer : observers_) {
      observer(*created);
    }
  }
  return result;
}

const StackEntry& StackTable::Get(StackId id) const {
  std::lock_guard<SpinLock> guard(lock_);
  return entries_[static_cast<std::size_t>(id)];
}

std::vector<StackId> StackTable::MatchingAtDepth(StackId id, int depth) const {
  depth = std::clamp(depth, 1, max_depth_);
  std::lock_guard<SpinLock> guard(lock_);
  const StackEntry& entry = entries_[static_cast<std::size_t>(id)];
  const std::uint64_t h = entry.depth_hash[static_cast<std::size_t>(depth - 1)];
  const auto& index = by_depth_[static_cast<std::size_t>(depth - 1)];
  auto it = index.find(h);
  if (it == index.end()) {
    return {};
  }
  // Verify frames (hash collisions are possible in principle).
  std::vector<StackId> out;
  out.reserve(it->second.size());
  const std::size_t n = std::min(entry.frames.size(), static_cast<std::size_t>(depth));
  for (StackId candidate : it->second) {
    const StackEntry& other = entries_[static_cast<std::size_t>(candidate)];
    const std::size_t m = std::min(other.frames.size(), static_cast<std::size_t>(depth));
    if (m == n && std::equal(entry.frames.begin(), entry.frames.begin() + static_cast<long>(n),
                             other.frames.begin())) {
      out.push_back(candidate);
    }
  }
  return out;
}

bool StackTable::MatchesAtDepth(StackId a, StackId b, int depth) const {
  if (a == b) {
    return true;
  }
  depth = std::clamp(depth, 1, max_depth_);
  std::lock_guard<SpinLock> guard(lock_);
  const StackEntry& ea = entries_[static_cast<std::size_t>(a)];
  const StackEntry& eb = entries_[static_cast<std::size_t>(b)];
  const std::size_t n = std::min(ea.frames.size(), static_cast<std::size_t>(depth));
  const std::size_t m = std::min(eb.frames.size(), static_cast<std::size_t>(depth));
  if (n != m) {
    return false;
  }
  if (ea.depth_hash[static_cast<std::size_t>(depth - 1)] !=
      eb.depth_hash[static_cast<std::size_t>(depth - 1)]) {
    return false;
  }
  return std::equal(ea.frames.begin(), ea.frames.begin() + static_cast<long>(n),
                    eb.frames.begin());
}

int StackTable::DeepestMatchDepth(StackId a, StackId b) const {
  if (a == b) {
    return max_depth_;
  }
  int deepest = 0;
  for (int d = 1; d <= max_depth_; ++d) {
    if (MatchesAtDepth(a, b, d)) {
      deepest = d;
    } else {
      break;
    }
  }
  return deepest;
}

void StackTable::AddNewStackObserver(NewStackObserver observer) {
  // Observers are registered at engine construction, before concurrent use.
  observers_.push_back(std::move(observer));
}

std::size_t StackTable::size() const {
  std::lock_guard<SpinLock> guard(lock_);
  return entries_.size();
}

std::string StackTable::Describe(StackId id) const {
  std::vector<Frame> frames;
  {
    std::lock_guard<SpinLock> guard(lock_);
    frames = entries_[static_cast<std::size_t>(id)].frames;
  }
  std::string out;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      out += ';';
    }
    out += FrameName(frames[i]);
  }
  return out;
}

}  // namespace dimmunix
