// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/stack_table.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"

namespace dimmunix {
namespace {

constexpr std::size_t kInitialIndexCapacity = 1 << 10;

// The index uses hash == 0 as the empty sentinel.
inline std::uint64_t NonZeroHash(std::uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

StackTable::StackTable(int max_depth) : max_depth_(std::max(1, max_depth)) {
  by_depth_.resize(static_cast<std::size_t>(max_depth_));
  auto index = std::make_unique<Index>(kInitialIndexCapacity);
  index_.store(index.get(), std::memory_order_release);
  retired_.push_back(std::move(index));
}

StackTable::~StackTable() = default;

std::uint64_t StackTable::SuffixHash(const std::vector<Frame>& frames, int depth) const {
  const std::size_t n = std::min(frames.size(), static_cast<std::size_t>(depth));
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = HashCombine(h, frames[i]);
  }
  // Mix in the effective length so that a 2-frame stack does not collide
  // with a 5-frame stack sharing its top 2 frames when compared at depth 2 —
  // they *should* collide there; but at depth 5 the 2-frame stack hashes its
  // whole content, and we must not let it alias a genuinely 5-deep suffix.
  return HashCombine(h, n);
}

StackId StackTable::Probe(const Index& index, std::uint64_t hash,
                          const std::vector<Frame>& frames) const {
  std::size_t i = static_cast<std::size_t>(hash) & index.mask;
  for (std::size_t step = 0; step <= index.mask; ++step) {
    const std::uint64_t slot_hash = index.slots[i].hash.load(std::memory_order_acquire);
    if (slot_hash == 0) {
      return kInvalidStackId;  // empty slot terminates the probe chain
    }
    if (slot_hash == hash) {
      const StackId id = index.slots[i].id.load(std::memory_order_acquire);
      // id precedes hash in publication order, so it is valid here. Full
      // 64-bit hash collisions are possible in principle: verify frames and
      // keep probing on mismatch.
      if (id != kInvalidStackId && Get(id).frames == frames) {
        return id;
      }
    }
    i = (i + 1) & index.mask;
  }
  return kInvalidStackId;
}

void StackTable::IndexInsertLocked(std::uint64_t hash, StackId id) {
  Index* index = index_.load(std::memory_order_relaxed);
  const std::size_t size = entries_.size();
  if (size * 2 > index->mask) {
    // Grow: rehash every published entry into a table twice the size, then
    // publish the new generation. Readers still probing the old generation
    // simply miss new entries and retry under the lock. Old generations are
    // retired (not freed) until destruction — a reader may hold a pointer
    // to one indefinitely.
    auto grown = std::make_unique<Index>((index->mask + 1) * 2);
    // `id`'s entry is already in the slab, so the rehash loop inserts it
    // along with every older entry; the generation is then published whole.
    for (std::size_t e = 0; e < size; ++e) {
      const StackEntry& entry = *entries_.Get(e);
      std::size_t i = static_cast<std::size_t>(NonZeroHash(entry.full_hash)) & grown->mask;
      while (grown->slots[i].hash.load(std::memory_order_relaxed) != 0) {
        i = (i + 1) & grown->mask;
      }
      grown->slots[i].id.store(entry.id, std::memory_order_relaxed);
      grown->slots[i].hash.store(NonZeroHash(entry.full_hash), std::memory_order_relaxed);
    }
    index_.store(grown.get(), std::memory_order_release);
    retired_.push_back(std::move(grown));
    return;
  }
  std::size_t i = static_cast<std::size_t>(hash) & index->mask;
  while (index->slots[i].hash.load(std::memory_order_acquire) != 0) {
    i = (i + 1) & index->mask;
  }
  index->slots[i].id.store(id, std::memory_order_release);
  index->slots[i].hash.store(hash, std::memory_order_release);
}

StackId StackTable::Intern(const std::vector<Frame>& frames) {
  const std::uint64_t full =
      NonZeroHash(Fnv1a64(frames.data(), frames.size() * sizeof(Frame)));

  // Lock-free fast path: the stack is usually already interned.
  {
    const Index* index = index_.load(std::memory_order_acquire);
    const StackId hit = Probe(*index, full, frames);
    if (hit != kInvalidStackId) {
      return hit;
    }
  }

  const StackEntry* created = nullptr;
  StackId result = kInvalidStackId;
  {
    std::lock_guard<SpinLock> guard(lock_);
    // Double-check under the lock (and against the current generation —
    // the fast path may have probed a stale one).
    const StackId hit = Probe(*index_.load(std::memory_order_relaxed), full, frames);
    if (hit != kInvalidStackId) {
      return hit;
    }
    StackEntry entry;
    entry.id = static_cast<StackId>(entries_.size());
    entry.frames = frames;
    entry.full_hash = full;
    entry.depth_hash.resize(static_cast<std::size_t>(max_depth_));
    for (int d = 1; d <= max_depth_; ++d) {
      entry.depth_hash[static_cast<std::size_t>(d - 1)] = SuffixHash(frames, d);
    }
    auto [stored, stored_index] = entries_.Append(std::move(entry));
    (void)stored_index;
    for (int d = 1; d <= max_depth_; ++d) {
      const std::size_t di = static_cast<std::size_t>(d - 1);
      by_depth_[di][stored->depth_hash[di]].push_back(stored->id);
    }
    IndexInsertLocked(full, stored->id);
    created = stored;
    result = stored->id;
  }
  if (created != nullptr) {
    for (const auto& observer : observers_) {
      observer(*created);
    }
  }
  return result;
}

std::vector<StackId> StackTable::MatchingAtDepth(StackId id, int depth) const {
  depth = std::clamp(depth, 1, max_depth_);
  const StackEntry& entry = Get(id);
  const std::uint64_t h = entry.depth_hash[static_cast<std::size_t>(depth - 1)];
  std::vector<StackId> candidates;
  {
    std::lock_guard<SpinLock> guard(lock_);
    const auto& index = by_depth_[static_cast<std::size_t>(depth - 1)];
    auto it = index.find(h);
    if (it == index.end()) {
      return {};
    }
    candidates = it->second;  // copy: verify frames outside the lock
  }
  // Verify frames (hash collisions are possible in principle).
  std::vector<StackId> out;
  out.reserve(candidates.size());
  const std::size_t n = std::min(entry.frames.size(), static_cast<std::size_t>(depth));
  for (StackId candidate : candidates) {
    const StackEntry& other = Get(candidate);
    const std::size_t m = std::min(other.frames.size(), static_cast<std::size_t>(depth));
    if (m == n && std::equal(entry.frames.begin(), entry.frames.begin() + static_cast<long>(n),
                             other.frames.begin())) {
      out.push_back(candidate);
    }
  }
  return out;
}

bool StackTable::MatchesAtDepth(StackId a, StackId b, int depth) const {
  if (a == b) {
    return true;
  }
  depth = std::clamp(depth, 1, max_depth_);
  const StackEntry& ea = Get(a);
  const StackEntry& eb = Get(b);
  const std::size_t n = std::min(ea.frames.size(), static_cast<std::size_t>(depth));
  const std::size_t m = std::min(eb.frames.size(), static_cast<std::size_t>(depth));
  if (n != m) {
    return false;
  }
  if (ea.depth_hash[static_cast<std::size_t>(depth - 1)] !=
      eb.depth_hash[static_cast<std::size_t>(depth - 1)]) {
    return false;
  }
  return std::equal(ea.frames.begin(), ea.frames.begin() + static_cast<long>(n),
                    eb.frames.begin());
}

int StackTable::DeepestMatchDepth(StackId a, StackId b) const {
  if (a == b) {
    return max_depth_;
  }
  int deepest = 0;
  for (int d = 1; d <= max_depth_; ++d) {
    if (MatchesAtDepth(a, b, d)) {
      deepest = d;
    } else {
      break;
    }
  }
  return deepest;
}

void StackTable::AddNewStackObserver(NewStackObserver observer) {
  // Observers are registered at engine construction, before concurrent use.
  observers_.push_back(std::move(observer));
}

std::string StackTable::Describe(StackId id) const {
  const StackEntry& entry = Get(id);
  std::string out;
  for (std::size_t i = 0; i < entry.frames.size(); ++i) {
    if (i > 0) {
      out += ';';
    }
    out += FrameName(entry.frames[i]);
  }
  return out;
}

}  // namespace dimmunix
