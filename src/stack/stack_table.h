// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Interned call stacks with per-depth suffix hashes.
//
// §5.6: "Dimmunix uses a hash table to map raw call stacks to our own call
// stack objects. Matching a call stack consists of hashing the raw call
// stack and finding the corresponding metadata object S."
//
// Every distinct call stack observed by the engine (and every stack loaded
// from the signature history) is interned exactly once and given a dense
// StackId. For each interned stack we precompute the hash of its top-d
// frames for d = 1..max_depth, and maintain, per depth, an index from suffix
// hash to the stacks sharing that suffix. That index is what makes
// "find all live stacks matching signature stack S at depth d" an O(1)
// lookup instead of a scan.
//
// Concurrency: interning runs on the application's critical path (every
// Request hashes and interns the current stack), so the common "stack
// already interned" case is LOCK-FREE — a probe of an open-addressing index
// of atomics, then an immutable entry read through an AtomicSlab. Only a
// genuinely new stack takes the writer lock. Entry contents never change
// after publication, so Get/MatchesAtDepth/DeepestMatchDepth/Describe are
// lock-free too; the per-depth suffix index is consulted only by rare paths
// (signature-cache rebuilds) and stays under the writer lock.

#ifndef DIMMUNIX_STACK_STACK_TABLE_H_
#define DIMMUNIX_STACK_STACK_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/atomic_slab.h"
#include "src/common/spin_lock.h"
#include "src/stack/frame.h"

namespace dimmunix {

using StackId = std::int32_t;
constexpr StackId kInvalidStackId = -1;

// Immutable after interning; stable address (entries live in a slab).
struct StackEntry {
  StackId id = kInvalidStackId;
  std::vector<Frame> frames;          // innermost first
  std::uint64_t full_hash = 0;        // hash over all frames
  std::vector<std::uint64_t> depth_hash;  // depth_hash[d-1] = hash of top-d frames
};

class StackTable {
 public:
  explicit StackTable(int max_depth);
  ~StackTable();

  StackTable(const StackTable&) = delete;
  StackTable& operator=(const StackTable&) = delete;

  // Interns `frames`, returning the existing id when already present.
  // Thread-safe; lock-free when the stack is already interned. Invokes any
  // registered new-stack observers (outside all internal locks) when a
  // genuinely new stack is created.
  StackId Intern(const std::vector<Frame>& frames);

  // Entry accessor; the returned reference is valid forever. Lock-free.
  const StackEntry& Get(StackId id) const { return *entries_.Get(static_cast<std::size_t>(id)); }

  // All interned stacks whose top-min(d,len) frames hash-match `entry` at
  // depth d. The result includes `entry` itself. (Diagnostic/offline query
  // — the engine's matcher now tracks per-signature membership on the
  // slots themselves; nothing on the hot path calls this.)
  std::vector<StackId> MatchingAtDepth(StackId id, int depth) const;

  // True iff stacks `a` and `b` match when compared at depth d (§5.5): their
  // top-min(d, len) frames are identical and the shorter stack is only
  // accepted when it is entirely contained, i.e. both are truncated at the
  // same effective depth. Lock-free.
  bool MatchesAtDepth(StackId a, StackId b, int depth) const;

  // The deepest depth (<= max_depth) at which `a` still matches `b`;
  // 0 if they do not even match at depth 1. Used by the calibration
  // fast-path (§5.5). Lock-free.
  int DeepestMatchDepth(StackId a, StackId b) const;

  // Observer invoked for every newly interned stack (after insertion,
  // outside all internal locks). The striped engine no longer registers
  // one (slot memberships are computed lazily); kept as an extension point
  // for tooling that wants to mirror the table incrementally.
  using NewStackObserver = std::function<void(const StackEntry&)>;
  void AddNewStackObserver(NewStackObserver observer);

  int max_depth() const { return max_depth_; }
  std::size_t size() const { return entries_.size(); }

  // Diagnostic: "frame0;frame1;..." with symbolized names.
  std::string Describe(StackId id) const;

 private:
  // One slot of the lock-free intern index: the entry's full hash (0 =
  // empty; real hashes of 0 are remapped) and its id. A single writer (the
  // insert lock holder) publishes id before hash, so any reader that
  // observes the hash observes a valid id.
  struct IndexSlot {
    std::atomic<std::uint64_t> hash{0};
    std::atomic<StackId> id{kInvalidStackId};
  };
  struct Index {
    explicit Index(std::size_t capacity)
        : mask(capacity - 1), slots(std::make_unique<IndexSlot[]>(capacity)) {}
    const std::size_t mask;  // capacity - 1 (power of two)
    std::unique_ptr<IndexSlot[]> slots;
  };

  std::uint64_t SuffixHash(const std::vector<Frame>& frames, int depth) const;

  // Probes `index` for an entry with `hash` whose frames equal `frames`.
  // Returns kInvalidStackId on miss.
  StackId Probe(const Index& index, std::uint64_t hash,
                const std::vector<Frame>& frames) const;

  // Writer-lock held: inserts (hash -> id) into the current index, growing
  // (and republishing) it when load factor exceeds 1/2.
  void IndexInsertLocked(std::uint64_t hash, StackId id);

  const int max_depth_;
  mutable SpinLock lock_;  // serializes writers (insert + depth index)
  AtomicSlab<StackEntry> entries_;
  std::atomic<Index*> index_;
  std::vector<std::unique_ptr<Index>> retired_;  // old index generations
  // per depth d (1-based): suffix hash -> ids sharing that suffix. Guarded
  // by lock_ (rare-path only).
  std::vector<std::unordered_map<std::uint64_t, std::vector<StackId>>> by_depth_;
  std::vector<NewStackObserver> observers_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_STACK_STACK_TABLE_H_
