// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Interned call stacks with per-depth suffix hashes.
//
// §5.6: "Dimmunix uses a hash table to map raw call stacks to our own call
// stack objects. Matching a call stack consists of hashing the raw call
// stack and finding the corresponding metadata object S."
//
// Every distinct call stack observed by the engine (and every stack loaded
// from the signature history) is interned exactly once and given a dense
// StackId. For each interned stack we precompute the hash of its top-d
// frames for d = 1..max_depth, and maintain, per depth, an index from suffix
// hash to the stacks sharing that suffix. That index is what makes
// "find all live stacks matching signature stack S at depth d" an O(1)
// lookup instead of a scan.

#ifndef DIMMUNIX_STACK_STACK_TABLE_H_
#define DIMMUNIX_STACK_STACK_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/spin_lock.h"
#include "src/stack/frame.h"

namespace dimmunix {

using StackId = std::int32_t;
constexpr StackId kInvalidStackId = -1;

// Immutable after interning; stable address (entries live in a deque).
struct StackEntry {
  StackId id = kInvalidStackId;
  std::vector<Frame> frames;          // innermost first
  std::uint64_t full_hash = 0;        // hash over all frames
  std::vector<std::uint64_t> depth_hash;  // depth_hash[d-1] = hash of top-d frames
};

class StackTable {
 public:
  explicit StackTable(int max_depth);

  StackTable(const StackTable&) = delete;
  StackTable& operator=(const StackTable&) = delete;

  // Interns `frames`, returning the existing id when already present.
  // Thread-safe. Invokes any registered new-stack observers (outside no
  // internal locks) when a genuinely new stack is created.
  StackId Intern(const std::vector<Frame>& frames);

  // Entry accessor; the returned reference is valid forever.
  const StackEntry& Get(StackId id) const;

  // All interned stacks whose top-min(d,len) frames hash-match `entry` at
  // depth d. The result includes `entry` itself.
  std::vector<StackId> MatchingAtDepth(StackId id, int depth) const;

  // True iff stacks `a` and `b` match when compared at depth d (§5.5): their
  // top-min(d, len) frames are identical and the shorter stack is only
  // accepted when it is entirely contained, i.e. both are truncated at the
  // same effective depth.
  bool MatchesAtDepth(StackId a, StackId b, int depth) const;

  // The deepest depth (<= max_depth) at which `a` still matches `b`;
  // 0 if they do not even match at depth 1. Used by the calibration
  // fast-path (§5.5: "analyzes whether it would have performed avoidance had
  // the depth been k+1, k+2, ...").
  int DeepestMatchDepth(StackId a, StackId b) const;

  // Observer invoked for every newly interned stack (after insertion).
  // Used by the engine to keep per-signature candidate lists incremental.
  using NewStackObserver = std::function<void(const StackEntry&)>;
  void AddNewStackObserver(NewStackObserver observer);

  int max_depth() const { return max_depth_; }
  std::size_t size() const;

  // Diagnostic: "frame0;frame1;..." with symbolized names.
  std::string Describe(StackId id) const;

 private:
  std::uint64_t SuffixHash(const std::vector<Frame>& frames, int depth) const;

  const int max_depth_;
  mutable SpinLock lock_;
  std::deque<StackEntry> entries_;
  // full hash -> candidate ids (collision chain).
  std::unordered_map<std::uint64_t, std::vector<StackId>> by_full_hash_;
  // per depth d (1-based): suffix hash -> ids sharing that suffix.
  std::vector<std::unordered_map<std::uint64_t, std::vector<StackId>>> by_depth_;
  std::vector<NewStackObserver> observers_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_STACK_STACK_TABLE_H_
