// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Call-stack capture. Returns frames *innermost first* (index 0 is the
// closest to the lock() call), because signature matching compares a suffix
// of the call flow, i.e. the most recent frames (§5.5).

#ifndef DIMMUNIX_STACK_CAPTURE_H_
#define DIMMUNIX_STACK_CAPTURE_H_

#include <vector>

#include "src/stack/frame.h"

namespace dimmunix {

// Hard cap on captured frames ("a call stack is always of finite size").
inline constexpr int kMaxCapturedFrames = 32;

// Captures the current thread's call stack:
//  - if the thread has annotated frames, returns them (reversed so the most
//    recently pushed annotation comes first);
//  - otherwise unwinds with backtrace() and converts return addresses to
//    module-relative frames, skipping `skip` innermost native frames (the
//    capture machinery itself).
std::vector<Frame> CaptureStack(int skip = 2);

// Unconditionally unwinds natively (used by the preload shim even when the
// host program happens to use annotations).
std::vector<Frame> CaptureNativeStack(int skip);

}  // namespace dimmunix

#endif  // DIMMUNIX_STACK_CAPTURE_H_
