// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

std::vector<Frame>& MutableStack() {
  thread_local std::vector<Frame> stack;
  return stack;
}

}  // namespace

const std::vector<Frame>& ThreadAnnotationStack() { return MutableStack(); }

void PushAnnotatedFrame(Frame frame) { MutableStack().push_back(frame); }

void PopAnnotatedFrame() {
  auto& stack = MutableStack();
  if (!stack.empty()) {
    stack.pop_back();
  }
}

}  // namespace dimmunix
