// Copyright (c) dimmunix-cpp authors. MIT license.
//
// A Frame is one "instruction address" of a deadlock signature (§5.3).
// Signatures must be portable across executions, so a frame is never a raw
// pointer:
//   - annotated frames hash a stable human-readable position string
//     ("Connection::close@connection.cc:41"), mirroring the Java
//     implementation's <methodName, file:line#> vectors;
//   - captured frames combine the executable/module identity with the byte
//     offset of the return address relative to the module base, mirroring
//     the pthreads implementation ("Dimmunix computes the byte offset of
//     each return address relative to the beginning of the binary").

#ifndef DIMMUNIX_STACK_FRAME_H_
#define DIMMUNIX_STACK_FRAME_H_

#include <cstdint>
#include <string>

namespace dimmunix {

// Execution-independent position id.
using Frame = std::uint64_t;

constexpr Frame kInvalidFrame = 0;

// Builds a frame from a stable position string and remembers the name for
// symbolization. Deterministic: the same string yields the same frame in
// every process.
Frame FrameFromName(const std::string& name);

// Builds a frame from a module identity hash and a module-relative offset.
Frame FrameFromModuleOffset(std::uint64_t module_hash, std::uint64_t offset);

// Human-readable form: the registered name if the frame was annotated in
// this process, otherwise "0x<hex>".
std::string FrameName(Frame frame);

}  // namespace dimmunix

#endif  // DIMMUNIX_STACK_FRAME_H_
