// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/capture.h"

#include <dlfcn.h>
#include <execinfo.h>

#include <algorithm>
#include <cstdint>

#include "src/common/hash.h"
#include "src/stack/annotation.h"

namespace dimmunix {

std::vector<Frame> CaptureStack(int skip) {
  const std::vector<Frame>& annotated = ThreadAnnotationStack();
  if (!annotated.empty()) {
    // Annotation stack is outermost-first; the signature wants the suffix of
    // the call flow, so reverse it.
    std::vector<Frame> frames(annotated.rbegin(), annotated.rend());
    if (frames.size() > static_cast<std::size_t>(kMaxCapturedFrames)) {
      frames.resize(kMaxCapturedFrames);
    }
    return frames;
  }
  return CaptureNativeStack(skip + 1);
}

std::vector<Frame> CaptureNativeStack(int skip) {
  void* addrs[kMaxCapturedFrames + 8];
  const int n = backtrace(addrs, kMaxCapturedFrames + 8);
  std::vector<Frame> frames;
  frames.reserve(static_cast<std::size_t>(std::max(0, n - skip)));
  for (int i = skip; i < n && frames.size() < kMaxCapturedFrames; ++i) {
    Dl_info info{};
    std::uint64_t module_hash = 0;
    std::uint64_t offset = reinterpret_cast<std::uint64_t>(addrs[i]);
    if (dladdr(addrs[i], &info) != 0 && info.dli_fbase != nullptr) {
      offset -= reinterpret_cast<std::uint64_t>(info.dli_fbase);
      if (info.dli_fname != nullptr) {
        module_hash = Fnv1a64(info.dli_fname, std::char_traits<char>::length(info.dli_fname));
      }
    }
    frames.push_back(FrameFromModuleOffset(module_hash, offset));
  }
  return frames;
}

}  // namespace dimmunix
