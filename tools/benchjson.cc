// Copyright (c) dimmunix-cpp authors. MIT license.
//
// benchjson — machine-readable benchmark runner.
//
// Runs the §7.2.2 synchronization microbenchmark in the configurations of
// Figure 5 (lock throughput vs. thread count, uninstrumented baseline vs.
// the instrumented engine with a 64-signature history) and Figure 8
// (overhead breakdown by engine stage) and emits BENCH_<bench>.json with
// the schema documented in src/benchlib/trial.h:
//
//   {"bench": ..., "config": {...}, "samples": [...],
//    "p50_ns": ..., "p99_ns": ..., "throughput_ops_s": ...}
//
// The aggregate fields are taken from the fully instrumented run at the
// highest measured thread count — the number the striped hot path must keep
// pushing up. CI's bench-smoke job runs `--quick` on every push, uploads
// the JSON artifacts, and fails on malformed output or zero throughput.
//
// Unlike the human-readable bench_* binaries (which default to the paper's
// δout = 1 ms think time, hiding engine cost behind computation), benchjson
// uses δin = 1 µs / δout = 0: every microsecond of engine work is visible
// in the measured throughput, which is what a regression tracker needs.
//
// Figure 4 gets a cross-process twist: BENCH_fig4.json measures the
// two-process shared-mutex victim shape — two processes hammering
// PTHREAD_PROCESS_SHARED mutexes, uninstrumented vs. instrumented with the
// IPC arena publishing every acquisition — plus the single-process striped
// workload with and without an arena configured, proving arena publishing
// stays off the local-lock fast path.
//
// Usage:
//   benchjson --bench fig4 [--quick] [--out PATH]
//   benchjson --bench fig5 [--quick] [--out PATH]
//   benchjson --bench fig8 [--quick] [--out PATH]
//   benchjson --bench all  [--quick]

#include <pthread.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/trial.h"
#include "src/benchlib/workload.h"
#include "src/ipc/global_id.h"
#include "src/persist/file.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

struct Options {
  std::string bench;
  std::string out;     // empty = BenchJsonPath(bench)
  bool quick = false;  // CI smoke mode: fewer points, shorter duration
};

Duration MeasureDuration(const Options& opts) {
  return opts.quick ? std::chrono::milliseconds(250) : std::chrono::milliseconds(1000);
}

// Recorded in every report's config: the tail-ratio gate only applies to
// samples whose thread count the machine can actually run (threads ≤ 2×cpus).
std::string CpuCount() {
  const unsigned cores = std::thread::hardware_concurrency();
  return std::to_string(cores > 0 ? cores : 1);
}

WorkloadParams BaseParams(const Options& opts, int threads) {
  WorkloadParams params;
  params.threads = threads;
  params.locks = 8;
  params.delta_in_us = 1;
  params.delta_out_us = 0;
  params.duration = MeasureDuration(opts);
  params.latency_sample_every = kBenchLatencySampleEvery;
  return params;
}

// Committed tail-latency budgets (p99_budget_ns in BENCH_*.json). CI's
// bench-smoke gate fails a run whose p99_ns exceeds its budget. Roughly
// 10x the committed quick-mode p99 of each benchmark: loose enough for
// scheduler noise on shared runners, tight enough that a convoy-class
// regression (e.g. the pre-striping epoch guard) trips it.
std::uint64_t P99BudgetNs(const std::string& bench) {
  if (bench == "fig5") {
    return 20'000'000;  // yield parks under an oversubscribed run queue
  }
  if (bench == "fig8") {
    return 5'000'000;  // committed p99 ~24 us
  }
  if (bench == "fig4") {
    return 5'000'000;  // committed p99 ~3.5 us (cross-process publish)
  }
  return 0;
}

// Tail-ratio budget (p99 ≤ budget × p50) for the instrumented samples,
// enforced by scripts/bench_gate.py on samples with threads ≤ 2×cpus (see
// trial.h and docs/performance.md for why the gate stops there). 10x is the
// design target the incremental matcher must hold: the pre-incremental
// epoch convoy sat near 900x.
double TailBudgetRatio(const std::string& bench) {
  if (bench == "fig5" || bench == "fig8") {
    return 10.0;
  }
  return 0.0;
}

BenchSample ToSample(const char* label, int threads, const WorkloadResult& result) {
  BenchSample sample;
  sample.label = label;
  sample.threads = threads;
  sample.throughput_ops_s = result.ops_per_sec;
  sample.ops = result.lock_ops;
  sample.elapsed_s = result.elapsed_sec;
  sample.p50_ns = PercentileNs(result.latencies_ns, 0.50);
  sample.p99_ns = PercentileNs(result.latencies_ns, 0.99);
  sample.yields = result.yields;
  return sample;
}

// A Runtime loaded with the Figure 5 synthetic history: 64 two-stack
// signatures at depth 4, referring to stacks the workload can produce.
Config InstrumentedConfig() {
  Config config;
  config.start_monitor = true;
  config.default_match_depth = 4;
  config.yield_timeout = std::chrono::milliseconds(50);
  return config;
}

void LoadSyntheticHistory(Runtime& rt) {
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  sigs.signature_size = 2;
  sigs.match_depth = 4;
  GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
  rt.engine().NotifyHistoryChanged();
}

int RunFig5(const Options& opts) {
  std::vector<int> thread_counts = opts.quick ? std::vector<int>{2, 8, 16}
                                              : std::vector<int>{2, 4, 8, 16, 32, 64};
  BenchReport report;
  report.bench = "fig5";
  report.p99_budget_ns = P99BudgetNs(report.bench);
  report.tail_budget_ratio = TailBudgetRatio(report.bench);
  report.config = {
      {"cpus", CpuCount()},
      {"workload", "sync microbenchmark (7.2.2)"},
      {"locks", "8"},
      {"delta_in_us", "1"},
      {"delta_out_us", "0"},
      {"signatures", "64"},
      {"signature_size", "2"},
      {"match_depth", "4"},
      {"duration_ms", std::to_string(ToMillis(MeasureDuration(opts)))},
      {"latency_sample_every", std::to_string(kBenchLatencySampleEvery)},
      {"mode", opts.quick ? "quick" : "full"},
  };

  for (const int threads : thread_counts) {
    WorkloadParams params = BaseParams(opts, threads);

    params.mode = WorkloadMode::kBaseline;
    const WorkloadResult baseline = RunWorkload(params);
    report.samples.push_back(ToSample("baseline", threads, baseline));

    Runtime rt(InstrumentedConfig());
    LoadSyntheticHistory(rt);
    params.mode = WorkloadMode::kDimmunix;
    params.runtime = &rt;
    const WorkloadResult dimx = RunWorkload(params);
    report.samples.push_back(ToSample("dimmunix", threads, dimx));
    {
      // Matcher-health summary alongside the throughput line: epoch entries
      // near zero (one per history load) and slow path at zero are the
      // structural proof the incremental matcher is carrying the decisions.
      const EngineStatsSnapshot es = rt.engine().stats().Snapshot();
      if (dimx.lock_ops > 0) {
        report.samples.back().retries_per_op =
            static_cast<double>(es.match_fast_retries) / static_cast<double>(dimx.lock_ops);
      }
      std::printf("  matcher: fast=%llu slow=%llu retries=%llu epochs=%llu hold_us=%llu\n",
                  static_cast<unsigned long long>(es.match_fast_path),
                  static_cast<unsigned long long>(es.match_slow_path),
                  static_cast<unsigned long long>(es.match_fast_retries),
                  static_cast<unsigned long long>(es.epoch_entries),
                  static_cast<unsigned long long>(es.epoch_hold_ns / 1000));
    }

    // Headline aggregate: the instrumented run at the highest thread count.
    report.p50_ns = PercentileNs(dimx.latencies_ns, 0.50);
    report.p99_ns = PercentileNs(dimx.latencies_ns, 0.99);
    report.throughput_ops_s = dimx.ops_per_sec;

    std::printf("fig5 threads=%3d baseline=%10.0f ops/s  dimmunix=%10.0f ops/s  "
                "p50=%lluns p99=%lluns\n",
                threads, baseline.ops_per_sec, dimx.ops_per_sec,
                static_cast<unsigned long long>(report.p50_ns),
                static_cast<unsigned long long>(report.p99_ns));
  }

  const std::string path = opts.out.empty() ? BenchJsonPath("fig5") : opts.out;
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int RunFig8(const Options& opts) {
  const std::vector<int> thread_counts =
      opts.quick ? std::vector<int>{8} : std::vector<int>{2, 8, 16};
  struct Stage {
    const char* label;
    EngineStage stage;
  };
  const Stage stages[] = {
      {"instr", EngineStage::kInstrumentationOnly},
      {"data", EngineStage::kDataStructures},
      {"full", EngineStage::kFull},
  };

  BenchReport report;
  report.bench = "fig8";
  report.p99_budget_ns = P99BudgetNs(report.bench);
  report.tail_budget_ratio = TailBudgetRatio(report.bench);
  report.config = {
      {"cpus", CpuCount()},
      {"workload", "sync microbenchmark (7.2.2), staged engine"},
      {"locks", "8"},
      {"delta_in_us", "1"},
      {"delta_out_us", "0"},
      {"signatures", "64"},
      {"duration_ms", std::to_string(ToMillis(MeasureDuration(opts)))},
      {"latency_sample_every", std::to_string(kBenchLatencySampleEvery)},
      {"mode", opts.quick ? "quick" : "full"},
  };

  for (const int threads : thread_counts) {
    WorkloadParams params = BaseParams(opts, threads);
    params.mode = WorkloadMode::kBaseline;
    const WorkloadResult baseline = RunWorkload(params);
    report.samples.push_back(ToSample("baseline", threads, baseline));
    std::printf("fig8 threads=%3d baseline=%10.0f ops/s\n", threads, baseline.ops_per_sec);

    double full_ops = 0.0;
    for (const Stage& stage : stages) {
      Config config = InstrumentedConfig();
      config.stage = stage.stage;
      Runtime rt(config);
      LoadSyntheticHistory(rt);
      params.mode = WorkloadMode::kDimmunix;
      params.runtime = &rt;
      const WorkloadResult result = RunWorkload(params);
      report.samples.push_back(ToSample(stage.label, threads, result));
      if (result.lock_ops > 0) {
        const EngineStatsSnapshot es = rt.engine().stats().Snapshot();
        report.samples.back().retries_per_op =
            static_cast<double>(es.match_fast_retries) / static_cast<double>(result.lock_ops);
      }
      std::printf("fig8 threads=%3d %12s=%10.0f ops/s\n", threads, stage.label,
                  result.ops_per_sec);
      if (stage.stage == EngineStage::kFull) {
        full_ops = result.ops_per_sec;
        report.p50_ns = PercentileNs(result.latencies_ns, 0.50);
        report.p99_ns = PercentileNs(result.latencies_ns, 0.99);
        report.throughput_ops_s = result.ops_per_sec;
      }
    }

    // full + durable persistence: same engine stage, but with a live history
    // file, save-on-update, and the async HistoryStore journaling/compacting.
    // History I/O is off the hot path, so this must track "full" within
    // noise — the number CI watches for regressions of that property.
    {
      Config config = InstrumentedConfig();
      config.stage = EngineStage::kFull;
      config.history_path = BenchJsonPath("fig8") + ".hist";
      config.save_history_on_update = true;
      config.load_history_on_init = false;  // fresh file every run
      config.journal_threshold = 8;
      persist::RemoveHistoryFiles(config.history_path);
      {
        Runtime rt(config);
        LoadSyntheticHistory(rt);
        params.mode = WorkloadMode::kDimmunix;
        params.runtime = &rt;
        const WorkloadResult result = RunWorkload(params);
        report.samples.push_back(ToSample("full+persist", threads, result));
        std::printf("fig8 threads=%3d %12s=%10.0f ops/s (%+.2f%% vs full)\n", threads,
                    "full+persist", result.ops_per_sec,
                    full_ops > 0 ? (result.ops_per_sec / full_ops - 1.0) * 100.0 : 0.0);
      }
      persist::RemoveHistoryFiles(config.history_path);
    }
  }

  const std::string path = opts.out.empty() ? BenchJsonPath("fig8") : opts.out;
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// --- Figure 4: the two-process victim shape ----------------------------------

constexpr int kFig4Processes = 2;
constexpr std::size_t kFig4LatencySlots = 8192;
constexpr int kFig4SampleEvery = 64;

// Lives in MAP_SHARED|MAP_ANONYMOUS memory; both children and the parent
// see one copy.
struct Fig4Shared {
  pthread_mutex_t mutex[kFig4Processes];  // one PROCESS_SHARED mutex per child
  std::atomic<int> ready;
  std::atomic<int> go;
  std::atomic<int> stop;
  std::atomic<std::uint64_t> ops[kFig4Processes];
  // Child 0 samples its acquisition latency every kFig4SampleEvery ops.
  std::atomic<std::uint32_t> latency_count;
  std::uint64_t latencies_ns[kFig4LatencySlots];
};

// One child's measurement loop: lock/unlock its own shared mutex as fast as
// possible. Instrumented children run the full acquisition port with the
// global (arena-published) LockId around the raw operation — exactly what
// the LD_PRELOAD shim does for a PROCESS_SHARED mutex.
void Fig4Child(Fig4Shared* shared, int index, bool instrumented,
               const std::string& arena_path) {
  Runtime* rt = nullptr;
  if (instrumented) {
    Config config = InstrumentedConfig();
    config.ipc_path = arena_path;
    rt = new Runtime(config);
    LoadSyntheticHistory(*rt);
    ipc::InvalidateMapsCache();  // the parent's mapping predates this fork
  }
  // Annotated stack, like every other benchjson workload: the measurement
  // targets the protocol + arena publishing cost, not backtrace(3).
  ScopedFrame scope(FrameFromName("fig4::worker" + std::to_string(index)));
  shared->ready.fetch_add(1);
  while (shared->go.load(std::memory_order_acquire) == 0) {
  }
  std::uint64_t ops = 0;
  while (shared->stop.load(std::memory_order_relaxed) == 0) {
    const bool sample = index == 0 && ops % kFig4SampleEvery == 0;
    const MonoTime t0 = sample ? Now() : MonoTime{};
    // The id is resolved inside the loop on purpose: the real shim cannot
    // hoist it either, so fig4 measures resolve (cache hit) + protocol +
    // publication per acquisition, not just the protocol.
    LockId lock_id = 0;
    if (instrumented) {
      lock_id = ipc::GlobalIdForSharedAddress(&shared->mutex[index]);
      AcquireOp op = rt->BeginAcquire(lock_id, AcquireMode::kExclusive);
      pthread_mutex_lock(&shared->mutex[index]);
      op.Commit();
    } else {
      pthread_mutex_lock(&shared->mutex[index]);
    }
    if (sample) {
      const std::uint32_t at = shared->latency_count.load(std::memory_order_relaxed);
      if (at < kFig4LatencySlots) {
        shared->latencies_ns[at] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - t0).count());
        shared->latency_count.store(at + 1, std::memory_order_relaxed);
      }
    }
    if (instrumented) {
      rt->EndRelease(lock_id);
    }
    pthread_mutex_unlock(&shared->mutex[index]);
    ++ops;
  }
  shared->ops[index].store(ops);
  delete rt;  // clean shutdown releases the arena participant slot
}

BenchSample RunFig4TwoProcess(const Options& opts, bool instrumented,
                              const std::string& arena_path) {
  auto* shared = static_cast<Fig4Shared*>(::mmap(nullptr, sizeof(Fig4Shared),
                                                 PROT_READ | PROT_WRITE,
                                                 MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  new (shared) Fig4Shared();
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  for (int i = 0; i < kFig4Processes; ++i) {
    pthread_mutex_init(&shared->mutex[i], &attr);
  }
  pthread_mutexattr_destroy(&attr);
  if (instrumented) {
    ::unlink(arena_path.c_str());
  }

  pid_t children[kFig4Processes];
  for (int i = 0; i < kFig4Processes; ++i) {
    children[i] = ::fork();
    if (children[i] == 0) {
      Fig4Child(shared, i, instrumented, arena_path);
      ::_exit(0);
    }
  }
  while (shared->ready.load() < kFig4Processes) {
    ::usleep(1000);
  }
  const MonoTime start = Now();
  shared->go.store(1, std::memory_order_release);
  const Duration duration = MeasureDuration(opts);
  ::usleep(static_cast<useconds_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(duration).count()));
  shared->stop.store(1, std::memory_order_relaxed);
  for (int i = 0; i < kFig4Processes; ++i) {
    ::waitpid(children[i], nullptr, 0);
  }
  const double elapsed =
      std::chrono::duration<double>(Now() - start).count();

  BenchSample sample;
  sample.label = instrumented ? "two_process_instrumented" : "two_process_uninstrumented";
  sample.threads = kFig4Processes;
  for (int i = 0; i < kFig4Processes; ++i) {
    sample.ops += shared->ops[i].load();
  }
  sample.elapsed_s = elapsed;
  sample.throughput_ops_s = elapsed > 0 ? static_cast<double>(sample.ops) / elapsed : 0;
  std::vector<std::uint64_t> latencies(
      shared->latencies_ns,
      shared->latencies_ns + std::min<std::uint32_t>(shared->latency_count.load(),
                                                     kFig4LatencySlots));
  sample.p50_ns = PercentileNs(latencies, 0.50);
  sample.p99_ns = PercentileNs(std::move(latencies), 0.99);
  if (instrumented) {
    ::unlink(arena_path.c_str());
  }
  ::munmap(shared, sizeof(Fig4Shared));
  return sample;
}

int RunFig4(const Options& opts) {
  BenchReport report;
  report.bench = "fig4";
  report.p99_budget_ns = P99BudgetNs(report.bench);
  report.config = {
      {"cpus", CpuCount()},
      {"workload", "two-process PROCESS_SHARED mutex victim + local fast path"},
      {"processes", std::to_string(kFig4Processes)},
      {"signatures", "64"},
      {"duration_ms", std::to_string(ToMillis(MeasureDuration(opts)))},
      {"latency_sample_every", std::to_string(kFig4SampleEvery)},
      {"mode", opts.quick ? "quick" : "full"},
  };
  const std::string arena_path = BenchJsonPath("fig4") + ".arena";

  // (a) The two-process victim shape: global locks, arena publishing on
  // every acquisition. Instrumented vs. uninstrumented is the cross-process
  // analogue of Figure 4's per-system overhead columns.
  const BenchSample uninstr = RunFig4TwoProcess(opts, /*instrumented=*/false, arena_path);
  report.samples.push_back(uninstr);
  std::printf("fig4 %-28s=%12.0f ops/s\n", uninstr.label.c_str(), uninstr.throughput_ops_s);
  const BenchSample instr = RunFig4TwoProcess(opts, /*instrumented=*/true, arena_path);
  report.samples.push_back(instr);
  std::printf("fig4 %-28s=%12.0f ops/s (%.1fx overhead)\n", instr.label.c_str(),
              instr.throughput_ops_s,
              instr.throughput_ops_s > 0 ? uninstr.throughput_ops_s / instr.throughput_ops_s
                                         : 0.0);
  report.p50_ns = instr.p50_ns;
  report.p99_ns = instr.p99_ns;
  report.throughput_ops_s = instr.throughput_ops_s;

  // (b) The guarantee the striped engine must keep: configuring an arena
  // does not touch the LOCAL lock fast path (same striped workload, with
  // and without DIMMUNIX_IPC). CI compares these two samples.
  const int local_threads = 8;
  for (const bool with_ipc : {false, true}) {
    Config config = InstrumentedConfig();
    if (with_ipc) {
      ::unlink(arena_path.c_str());
      config.ipc_path = arena_path;
    }
    Runtime rt(config);
    LoadSyntheticHistory(rt);
    WorkloadParams params = BaseParams(opts, local_threads);
    params.mode = WorkloadMode::kDimmunix;
    params.runtime = &rt;
    const WorkloadResult result = RunWorkload(params);
    const char* label = with_ipc ? "local_fastpath+ipc" : "local_fastpath";
    report.samples.push_back(ToSample(label, local_threads, result));
    std::printf("fig4 %-28s=%12.0f ops/s\n", label, result.ops_per_sec);
  }
  ::unlink(arena_path.c_str());

  const std::string path = opts.out.empty() ? BenchJsonPath("fig4") : opts.out;
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: benchjson --bench fig4|fig5|fig8|all [--quick] [--out PATH]\n"
               "  --quick  CI smoke mode (fewer points, 250 ms per point)\n"
               "  --out    output path (default BENCH_<bench>.json in CWD)\n");
  return 2;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench" && i + 1 < argc) {
      opts.bench = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opts.out = argv[++i];
    } else {
      return Usage();
    }
  }
  if (opts.bench == "fig4") {
    return RunFig4(opts);
  }
  if (opts.bench == "fig5") {
    return RunFig5(opts);
  }
  if (opts.bench == "fig8") {
    return RunFig8(opts);
  }
  if (opts.bench == "all") {
    if (!opts.out.empty()) {
      std::fprintf(stderr, "benchjson: --out is incompatible with --bench all\n");
      return 2;
    }
    const int fig4 = RunFig4(opts);
    const int fig5 = RunFig5(opts);
    const int fig8 = RunFig8(opts);
    return fig4 != 0 ? fig4 : (fig5 != 0 ? fig5 : fig8);
  }
  return Usage();
}

}  // namespace
}  // namespace dimmunix

int main(int argc, char** argv) { return dimmunix::Main(argc, argv); }
