// Copyright (c) dimmunix-cpp authors. MIT license.
//
// benchjson — machine-readable benchmark runner.
//
// Runs the §7.2.2 synchronization microbenchmark in the configurations of
// Figure 5 (lock throughput vs. thread count, uninstrumented baseline vs.
// the instrumented engine with a 64-signature history) and Figure 8
// (overhead breakdown by engine stage) and emits BENCH_<bench>.json with
// the schema documented in src/benchlib/trial.h:
//
//   {"bench": ..., "config": {...}, "samples": [...],
//    "p50_ns": ..., "p99_ns": ..., "throughput_ops_s": ...}
//
// The aggregate fields are taken from the fully instrumented run at the
// highest measured thread count — the number the striped hot path must keep
// pushing up. CI's bench-smoke job runs `--quick` on every push, uploads
// the JSON artifacts, and fails on malformed output or zero throughput.
//
// Unlike the human-readable bench_* binaries (which default to the paper's
// δout = 1 ms think time, hiding engine cost behind computation), benchjson
// uses δin = 1 µs / δout = 0: every microsecond of engine work is visible
// in the measured throughput, which is what a regression tracker needs.
//
// Usage:
//   benchjson --bench fig5 [--quick] [--out PATH]
//   benchjson --bench fig8 [--quick] [--out PATH]
//   benchjson --bench all  [--quick]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/trial.h"
#include "src/benchlib/workload.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

struct Options {
  std::string bench;
  std::string out;     // empty = BenchJsonPath(bench)
  bool quick = false;  // CI smoke mode: fewer points, shorter duration
};

Duration MeasureDuration(const Options& opts) {
  return opts.quick ? std::chrono::milliseconds(250) : std::chrono::milliseconds(1000);
}

WorkloadParams BaseParams(const Options& opts, int threads) {
  WorkloadParams params;
  params.threads = threads;
  params.locks = 8;
  params.delta_in_us = 1;
  params.delta_out_us = 0;
  params.duration = MeasureDuration(opts);
  params.latency_sample_every = kBenchLatencySampleEvery;
  return params;
}

BenchSample ToSample(const char* label, int threads, const WorkloadResult& result) {
  BenchSample sample;
  sample.label = label;
  sample.threads = threads;
  sample.throughput_ops_s = result.ops_per_sec;
  sample.ops = result.lock_ops;
  sample.elapsed_s = result.elapsed_sec;
  sample.p50_ns = PercentileNs(result.latencies_ns, 0.50);
  sample.p99_ns = PercentileNs(result.latencies_ns, 0.99);
  sample.yields = result.yields;
  return sample;
}

// A Runtime loaded with the Figure 5 synthetic history: 64 two-stack
// signatures at depth 4, referring to stacks the workload can produce.
Config InstrumentedConfig() {
  Config config;
  config.start_monitor = true;
  config.default_match_depth = 4;
  config.yield_timeout = std::chrono::milliseconds(50);
  return config;
}

void LoadSyntheticHistory(Runtime& rt) {
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  sigs.signature_size = 2;
  sigs.match_depth = 4;
  GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
  rt.engine().NotifyHistoryChanged();
}

int RunFig5(const Options& opts) {
  std::vector<int> thread_counts = opts.quick ? std::vector<int>{2, 8, 16}
                                              : std::vector<int>{2, 4, 8, 16, 32, 64};
  BenchReport report;
  report.bench = "fig5";
  report.config = {
      {"workload", "sync microbenchmark (7.2.2)"},
      {"locks", "8"},
      {"delta_in_us", "1"},
      {"delta_out_us", "0"},
      {"signatures", "64"},
      {"signature_size", "2"},
      {"match_depth", "4"},
      {"duration_ms", std::to_string(ToMillis(MeasureDuration(opts)))},
      {"latency_sample_every", std::to_string(kBenchLatencySampleEvery)},
      {"mode", opts.quick ? "quick" : "full"},
  };

  for (const int threads : thread_counts) {
    WorkloadParams params = BaseParams(opts, threads);

    params.mode = WorkloadMode::kBaseline;
    const WorkloadResult baseline = RunWorkload(params);
    report.samples.push_back(ToSample("baseline", threads, baseline));

    Runtime rt(InstrumentedConfig());
    LoadSyntheticHistory(rt);
    params.mode = WorkloadMode::kDimmunix;
    params.runtime = &rt;
    const WorkloadResult dimx = RunWorkload(params);
    report.samples.push_back(ToSample("dimmunix", threads, dimx));

    // Headline aggregate: the instrumented run at the highest thread count.
    report.p50_ns = PercentileNs(dimx.latencies_ns, 0.50);
    report.p99_ns = PercentileNs(dimx.latencies_ns, 0.99);
    report.throughput_ops_s = dimx.ops_per_sec;

    std::printf("fig5 threads=%3d baseline=%10.0f ops/s  dimmunix=%10.0f ops/s  "
                "p50=%lluns p99=%lluns\n",
                threads, baseline.ops_per_sec, dimx.ops_per_sec,
                static_cast<unsigned long long>(report.p50_ns),
                static_cast<unsigned long long>(report.p99_ns));
  }

  const std::string path = opts.out.empty() ? BenchJsonPath("fig5") : opts.out;
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int RunFig8(const Options& opts) {
  const std::vector<int> thread_counts =
      opts.quick ? std::vector<int>{8} : std::vector<int>{2, 8, 16};
  struct Stage {
    const char* label;
    EngineStage stage;
  };
  const Stage stages[] = {
      {"instr", EngineStage::kInstrumentationOnly},
      {"data", EngineStage::kDataStructures},
      {"full", EngineStage::kFull},
  };

  BenchReport report;
  report.bench = "fig8";
  report.config = {
      {"workload", "sync microbenchmark (7.2.2), staged engine"},
      {"locks", "8"},
      {"delta_in_us", "1"},
      {"delta_out_us", "0"},
      {"signatures", "64"},
      {"duration_ms", std::to_string(ToMillis(MeasureDuration(opts)))},
      {"latency_sample_every", std::to_string(kBenchLatencySampleEvery)},
      {"mode", opts.quick ? "quick" : "full"},
  };

  for (const int threads : thread_counts) {
    WorkloadParams params = BaseParams(opts, threads);
    params.mode = WorkloadMode::kBaseline;
    const WorkloadResult baseline = RunWorkload(params);
    report.samples.push_back(ToSample("baseline", threads, baseline));
    std::printf("fig8 threads=%3d baseline=%10.0f ops/s\n", threads, baseline.ops_per_sec);

    double full_ops = 0.0;
    for (const Stage& stage : stages) {
      Config config = InstrumentedConfig();
      config.stage = stage.stage;
      Runtime rt(config);
      LoadSyntheticHistory(rt);
      params.mode = WorkloadMode::kDimmunix;
      params.runtime = &rt;
      const WorkloadResult result = RunWorkload(params);
      report.samples.push_back(ToSample(stage.label, threads, result));
      std::printf("fig8 threads=%3d %12s=%10.0f ops/s\n", threads, stage.label,
                  result.ops_per_sec);
      if (stage.stage == EngineStage::kFull) {
        full_ops = result.ops_per_sec;
        report.p50_ns = PercentileNs(result.latencies_ns, 0.50);
        report.p99_ns = PercentileNs(result.latencies_ns, 0.99);
        report.throughput_ops_s = result.ops_per_sec;
      }
    }

    // full + durable persistence: same engine stage, but with a live history
    // file, save-on-update, and the async HistoryStore journaling/compacting.
    // History I/O is off the hot path, so this must track "full" within
    // noise — the number CI watches for regressions of that property.
    {
      Config config = InstrumentedConfig();
      config.stage = EngineStage::kFull;
      config.history_path = BenchJsonPath("fig8") + ".hist";
      config.save_history_on_update = true;
      config.load_history_on_init = false;  // fresh file every run
      config.journal_threshold = 8;
      persist::RemoveHistoryFiles(config.history_path);
      {
        Runtime rt(config);
        LoadSyntheticHistory(rt);
        params.mode = WorkloadMode::kDimmunix;
        params.runtime = &rt;
        const WorkloadResult result = RunWorkload(params);
        report.samples.push_back(ToSample("full+persist", threads, result));
        std::printf("fig8 threads=%3d %12s=%10.0f ops/s (%+.2f%% vs full)\n", threads,
                    "full+persist", result.ops_per_sec,
                    full_ops > 0 ? (result.ops_per_sec / full_ops - 1.0) * 100.0 : 0.0);
      }
      persist::RemoveHistoryFiles(config.history_path);
    }
  }

  const std::string path = opts.out.empty() ? BenchJsonPath("fig8") : opts.out;
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: benchjson --bench fig5|fig8|all [--quick] [--out PATH]\n"
               "  --quick  CI smoke mode (fewer points, 250 ms per point)\n"
               "  --out    output path (default BENCH_<bench>.json in CWD)\n");
  return 2;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench" && i + 1 < argc) {
      opts.bench = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opts.out = argv[++i];
    } else {
      return Usage();
    }
  }
  if (opts.bench == "fig5") {
    return RunFig5(opts);
  }
  if (opts.bench == "fig8") {
    return RunFig8(opts);
  }
  if (opts.bench == "all") {
    if (!opts.out.empty()) {
      std::fprintf(stderr, "benchjson: --out is incompatible with --bench all\n");
      return 2;
    }
    const int fig5 = RunFig5(opts);
    const int fig8 = RunFig8(opts);
    return fig5 != 0 ? fig5 : fig8;
  }
  return Usage();
}

}  // namespace
}  // namespace dimmunix

int main(int argc, char** argv) { return dimmunix::Main(argc, argv); }
