// Copyright (c) dimmunix-cpp authors. MIT license.
//
// dimctl — command-line client for the Dimmunix control socket.
//
//   dimctl -s /tmp/app.sock status
//   dimctl -s /tmp/app.sock history
//   dimctl -s /tmp/app.sock disable-last
//   DIMMUNIX_CONTROL=/tmp/app.sock dimctl reload
//   dimctl --target 10.0.0.7:7077 fleet status
//
// The socket path comes from -s/--socket or the DIMMUNIX_CONTROL environment
// variable — the same variable that makes an LD_PRELOAD'ed target process
// open the socket, so an operator can drive both sides with one setting.
// -t/--target host:port speaks the same line protocol over TCP to a
// dimmunixd daemon (tools/dimmunixd.cc) — possibly on another machine —
// instead of a local UNIX socket; $DIMMUNIX_FLEET is the default target.
//
// Protocol (src/control/protocol.h): one request line per connection; the
// reply's first line is "ok" or "err <reason>". dimctl prints the payload
// (the reply minus the leading status line for "ok"; the full reply for
// errors, to stderr) and exits 0 on ok, 2 on an "err" reply, 1 on usage or
// connection problems.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <chrono>

#include "src/control/protocol.h"
#include "src/fleet/net.h"
#include "src/obs/export.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: dimctl [-s SOCKET | -t HOST:PORT] COMMAND [ARGS...]\n"
               "       (socket defaults to $DIMMUNIX_CONTROL; -t speaks TCP to a\n"
               "        dimmunixd daemon instead)\n"
               "\ncommands:\n%s"
               "trace merge <out> <in...>  merge per-process trace dumps (local, no socket)\n",
               dimmunix::control::HelpText().c_str());
}

// "trace merge" is the one command that runs entirely in dimctl: it folds
// the per-process Chrome trace dumps (shutdown dumps, `trace dump` output)
// into one multi-process timeline. Everything else goes over the socket.
int TraceMerge(int argc, char** argv, int arg) {
  if (argc - arg < 2) {
    std::fprintf(stderr, "dimctl: usage: trace merge <out> <in...>\n");
    return 1;
  }
  const std::string output = argv[arg];
  std::vector<std::string> inputs;
  for (int i = arg + 1; i < argc; ++i) {
    inputs.emplace_back(argv[i]);
  }
  std::string error;
  if (!dimmunix::obs::MergeChromeTraceFiles(inputs, output, &error)) {
    std::fprintf(stderr, "dimctl: trace merge: %s\n", error.c_str());
    return 2;
  }
  std::printf("merged=%zu\npath=%s\n", inputs.size(), output.c_str());
  return 0;
}

int Connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "dimctl: bad socket path '%s'\n", path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "dimctl: socket(): %s\n", std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "dimctl: connect(%s): %s\n", path.c_str(), std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: report a vanished server as an error, not SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Shared exit protocol: payload to stdout and 0 on "ok", full reply to
// stderr and 2 on "err".
int PrintReply(const std::string& reply) {
  const bool ok = reply.rfind("ok", 0) == 0 && (reply.size() == 2 || reply[2] == '\n');
  if (ok) {
    const std::size_t payload = reply.find('\n');
    const std::string body =
        payload == std::string::npos ? std::string() : reply.substr(payload + 1);
    if (body.empty()) {
      std::printf("ok\n");
    } else {
      std::fputs(body.c_str(), stdout);
    }
    return 0;
  }
  std::fputs(reply.c_str(), stderr);
  if (!reply.empty() && reply.back() != '\n') {
    std::fputc('\n', stderr);
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string target;
  if (const char* env = std::getenv("DIMMUNIX_CONTROL"); env != nullptr) {
    socket_path = env;
  }
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    const std::string flag = argv[arg];
    if ((flag == "-s" || flag == "--socket") && arg + 1 < argc) {
      socket_path = argv[arg + 1];
      arg += 2;
    } else if ((flag == "-t" || flag == "--target") && arg + 1 < argc) {
      target = argv[arg + 1];
      arg += 2;
    } else if (flag == "-h" || flag == "--help") {
      Usage();
      return 0;
    } else {
      Usage();
      return 1;
    }
  }
  if (arg >= argc) {
    Usage();
    return 1;
  }
  if (std::strcmp(argv[arg], "trace") == 0 && arg + 1 < argc &&
      std::strcmp(argv[arg + 1], "merge") == 0) {
    return TraceMerge(argc, argv, arg + 2);
  }
  std::string request;
  for (int i = arg; i < argc; ++i) {
    if (!request.empty()) {
      request += ' ';
    }
    request += argv[i];
  }

  // Reject malformed commands locally for a friendlier message (the server
  // would refuse them identically).
  std::string parse_error;
  if (!dimmunix::control::ParseRequest(request, &parse_error).has_value()) {
    std::fprintf(stderr, "dimctl: %s\n", parse_error.c_str());
    return 1;
  }

  if (!target.empty()) {
    std::string reply;
    std::string error;
    if (!dimmunix::fleet::QueryTcp(target, request, std::chrono::seconds(10), &reply, &error)) {
      std::fprintf(stderr, "dimctl: %s: %s\n", target.c_str(), error.c_str());
      return 1;
    }
    return PrintReply(reply);
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "dimctl: no socket (use -s/--target or set DIMMUNIX_CONTROL)\n");
    return 1;
  }
  const int fd = Connect(socket_path);
  if (fd < 0) {
    return 1;
  }
  if (!SendAll(fd, request + "\n")) {
    std::fprintf(stderr, "dimctl: write: %s\n", std::strerror(errno));
    ::close(fd);
    return 1;
  }
  ::shutdown(fd, SHUT_WR);

  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "dimctl: read: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    if (n == 0) {
      break;
    }
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return PrintReply(reply);
}
