// Copyright (c) dimmunix-cpp authors. MIT license.
//
// dimmunixd — the fleet signature-exchange daemon (src/fleet/daemon.h).
//
//   dimmunixd --history /var/lib/dimmunix/history
//             --listen 0.0.0.0:7077
//             --peer 10.0.0.8:7077 --peer 10.0.0.9:7077
//             --allow 10.0.0.8 --allow 10.0.0.9
//             --gossip-ms 1000
//
// One daemon per host watches the host's history file(s) and gossips deltas
// with its peers; a deadlock escaped anywhere in the fleet becomes an
// avoidable signature everywhere within a gossip period (plus the
// applications' DIMMUNIX_RESYNC_MS). Runs in the foreground; SIGINT/SIGTERM
// shut it down cleanly. Drive it with `dimctl --target host:port ...`.
//
// The protocol is plaintext and unauthenticated: keep --listen on loopback
// or a trusted lab network, and allow-list every peer explicitly (loopback
// is always allowed; everything else is rejected unless named by --allow).

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/fleet/daemon.h"
#include "src/fleet/net.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void Usage() {
  std::fprintf(stderr,
               "usage: dimmunixd --history FILE [--history FILE...]\n"
               "                 [--listen HOST:PORT]   (default 127.0.0.1:7077)\n"
               "                 [--peer HOST:PORT...]  (gossip peer set)\n"
               "                 [--allow IP...]        (non-loopback sources to accept)\n"
               "                 [--gossip-ms N]        (default 1000; 0 = serve only)\n"
               "                 [--io-timeout-ms N]    (default 5000)\n"
               "                 [--trace]              (arm the flight recorder)\n");
}

bool NumberArg(const char* value, long* out) {
  char* end = nullptr;
  *out = std::strtol(value, &end, 10);
  return end != value && *end == '\0' && *out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  dimmunix::fleet::DaemonOptions options;
  options.listen_port = 7077;
  std::string listen = "127.0.0.1:7077";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const bool has_value = i + 1 < argc;
    if (flag == "--history" && has_value) {
      options.history_paths.emplace_back(argv[++i]);
    } else if (flag == "--listen" && has_value) {
      listen = argv[++i];
    } else if (flag == "--peer" && has_value) {
      options.peers.emplace_back(argv[++i]);
    } else if (flag == "--allow" && has_value) {
      options.allow.emplace_back(argv[++i]);
    } else if (flag == "--gossip-ms" && has_value) {
      long value = 0;
      if (!NumberArg(argv[++i], &value)) {
        std::fprintf(stderr, "dimmunixd: bad --gossip-ms '%s'\n", argv[i]);
        return 1;
      }
      options.gossip_period = std::chrono::milliseconds(value);
    } else if (flag == "--io-timeout-ms" && has_value) {
      long value = 0;
      if (!NumberArg(argv[++i], &value) || value == 0) {
        std::fprintf(stderr, "dimmunixd: bad --io-timeout-ms '%s'\n", argv[i]);
        return 1;
      }
      options.io_timeout = std::chrono::milliseconds(value);
    } else if (flag == "--trace") {
      options.trace_enabled = true;
    } else if (flag == "-h" || flag == "--help") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "dimmunixd: unknown or incomplete flag '%s'\n", flag.c_str());
      Usage();
      return 1;
    }
  }
  if (!dimmunix::fleet::ParseHostPort(listen, &options.listen_host, &options.listen_port)) {
    std::fprintf(stderr, "dimmunixd: bad --listen '%s' (want host:port)\n", listen.c_str());
    return 1;
  }
  for (const std::string& peer : options.peers) {
    std::string host;
    std::uint16_t port = 0;
    if (!dimmunix::fleet::ParseHostPort(peer, &host, &port)) {
      std::fprintf(stderr, "dimmunixd: bad --peer '%s' (want host:port)\n", peer.c_str());
      return 1;
    }
  }

  dimmunix::fleet::Daemon daemon(options);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "dimmunixd: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "dimmunixd: listening on %s (%zu histories, %zu peers, gossip %lld ms)\n",
               daemon.listen_address().c_str(), options.history_paths.size(),
               options.peers.size(),
               static_cast<long long>(options.gossip_period.count()));
  while (g_stop == 0) {
    // The daemon's threads do the work; the main thread only waits for a
    // signal. pause() returns on any handled signal.
    ::pause();
  }
  std::fprintf(stderr, "dimmunixd: shutting down\n");
  daemon.Stop();
  return 0;
}
